//! Simulated memory: named buffers with placement-aware cost accounting.
//!
//! Heap (global) buffers charge every access to L1 and *newly touched*
//! elements to DRAM (footprint model — see `hb-accel`'s counter docs).
//! Shared/stack buffers charge the shared-memory counter; accelerator
//! register buffers charge nothing (their traffic is counted on the memory
//! side of the movement).

use std::collections::HashMap;

use hb_accel::counters::CostCounters;
use hb_ir::numeric::round_to;
use hb_ir::types::{MemoryType, ScalarType};

/// Execution error (out-of-bounds access, unknown buffer, intrinsic misuse).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError(pub String);

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exec: {}", self.0)
    }
}

impl std::error::Error for ExecError {}

/// Shorthand result type.
pub type ExecResult<T> = Result<T, ExecError>;

/// A named simulated buffer.
#[derive(Debug, Clone)]
pub struct Buffer {
    /// Element type (values round through this precision on store).
    pub elem: ScalarType,
    /// Placement.
    pub memory: MemoryType,
    data: Vec<f64>,
    read_touched: Vec<bool>,
    write_touched: Vec<bool>,
}

impl Buffer {
    fn new(elem: ScalarType, size: usize, memory: MemoryType) -> Self {
        Buffer {
            elem,
            memory,
            data: vec![0.0; size],
            read_touched: vec![false; size],
            write_touched: vec![false; size],
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer has zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw contents (for checking results in tests/harnesses).
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

/// The buffer store plus accumulated cost counters.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    buffers: HashMap<String, Buffer>,
    /// Cost counters accumulated by all accesses so far.
    pub counters: CostCounters,
}

impl Memory {
    /// Empty memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a zero-filled buffer.
    ///
    /// # Errors
    ///
    /// Fails if the name is already allocated.
    pub fn alloc(
        &mut self,
        name: &str,
        elem: ScalarType,
        size: usize,
        memory: MemoryType,
    ) -> ExecResult<()> {
        if self.buffers.contains_key(name) {
            return Err(ExecError(format!("buffer {name} already allocated")));
        }
        self.buffers
            .insert(name.to_string(), Buffer::new(elem, size, memory));
        Ok(())
    }

    /// Allocates and initializes a buffer from `f64` contents (values round
    /// through the element precision).
    ///
    /// # Errors
    ///
    /// Fails if the name is already allocated.
    pub fn alloc_init(
        &mut self,
        name: &str,
        elem: ScalarType,
        memory: MemoryType,
        contents: &[f64],
    ) -> ExecResult<()> {
        self.alloc(name, elem, contents.len(), memory)?;
        let buf = self.buffers.get_mut(name).expect("just allocated");
        for (dst, &src) in buf.data.iter_mut().zip(contents) {
            *dst = round_to(elem, src);
        }
        Ok(())
    }

    /// Frees a buffer (leaving its DRAM footprint in the counters).
    ///
    /// # Errors
    ///
    /// Fails if the buffer does not exist.
    pub fn free(&mut self, name: &str) -> ExecResult<()> {
        self.buffers
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| ExecError(format!("free of unknown buffer {name}")))
    }

    /// Whether a buffer exists.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.buffers.contains_key(name)
    }

    /// Read-only view of a buffer.
    ///
    /// # Errors
    ///
    /// Fails if the buffer does not exist.
    pub fn buffer(&self, name: &str) -> ExecResult<&Buffer> {
        self.buffers
            .get(name)
            .ok_or_else(|| ExecError(format!("unknown buffer {name}")))
    }

    fn buffer_mut(&mut self, name: &str) -> ExecResult<&mut Buffer> {
        self.buffers
            .get_mut(name)
            .ok_or_else(|| ExecError(format!("unknown buffer {name}")))
    }

    /// Gathers elements at `indices`, applying cost accounting and storage
    /// rounding (already applied at write time; reads return stored values).
    ///
    /// # Errors
    ///
    /// Fails on out-of-bounds indices.
    pub fn read(&mut self, name: &str, indices: &[i64]) -> ExecResult<Vec<f64>> {
        let buf = self.buffer_mut(name)?;
        let mut out = Vec::with_capacity(indices.len());
        let elem_bytes = u64::from(buf.elem.bytes());
        let mut new_dram = 0u64;
        for &i in indices {
            let idx = usize::try_from(i)
                .map_err(|_| ExecError(format!("negative index {i} into {name}")))?;
            let v = *buf.data.get(idx).ok_or_else(|| {
                ExecError(format!(
                    "read {name}[{i}] out of bounds (len {})",
                    buf.data.len()
                ))
            })?;
            if !buf.read_touched[idx] {
                buf.read_touched[idx] = true;
                new_dram += elem_bytes;
            }
            out.push(v);
        }
        let total = elem_bytes * indices.len() as u64;
        match buf.memory {
            MemoryType::Heap => {
                self.counters.l1_bytes += total;
                self.counters.dram_read_bytes += new_dram;
            }
            MemoryType::GpuShared => {
                self.counters.shared_bytes += total;
            }
            // Stack scratch models per-thread registers; accelerator
            // register files are charged on the memory side of movements.
            _ => {}
        }
        Ok(out)
    }

    /// Scatters `values` to `indices`, rounding through the element
    /// precision and applying cost accounting.
    ///
    /// # Errors
    ///
    /// Fails on out-of-bounds indices or length mismatch.
    pub fn write(&mut self, name: &str, indices: &[i64], values: &[f64]) -> ExecResult<()> {
        if indices.len() != values.len() {
            return Err(ExecError(format!(
                "write to {name}: {} indices vs {} values",
                indices.len(),
                values.len()
            )));
        }
        let buf = self.buffer_mut(name)?;
        let elem = buf.elem;
        let elem_bytes = u64::from(elem.bytes());
        let mut new_dram = 0u64;
        for (&i, &v) in indices.iter().zip(values) {
            let idx = usize::try_from(i)
                .map_err(|_| ExecError(format!("negative index {i} into {name}")))?;
            let len = buf.data.len();
            let slot = buf
                .data
                .get_mut(idx)
                .ok_or_else(|| ExecError(format!("write {name}[{i}] out of bounds (len {len})")))?;
            *slot = round_to(elem, v);
            if !buf.write_touched[idx] {
                buf.write_touched[idx] = true;
                new_dram += elem_bytes;
            }
        }
        let total = elem_bytes * indices.len() as u64;
        match buf.memory {
            MemoryType::Heap => {
                self.counters.l1_bytes += total;
                self.counters.dram_write_bytes += new_dram;
            }
            MemoryType::GpuShared => {
                self.counters.shared_bytes += total;
            }
            _ => {}
        }
        Ok(())
    }

    /// Copies a buffer's contents out without cost accounting (harness use).
    ///
    /// # Errors
    ///
    /// Fails if the buffer does not exist.
    pub fn snapshot(&self, name: &str) -> ExecResult<Vec<f64>> {
        Ok(self.buffer(name)?.data.to_vec())
    }

    /// Overwrites contents without cost accounting (harness use); rounds
    /// through the element precision.
    ///
    /// # Errors
    ///
    /// Fails if the buffer does not exist or sizes mismatch.
    pub fn poke(&mut self, name: &str, contents: &[f64]) -> ExecResult<()> {
        let buf = self.buffer_mut(name)?;
        if contents.len() != buf.data.len() {
            return Err(ExecError(format!(
                "poke size mismatch for {name}: {} vs {}",
                contents.len(),
                buf.data.len()
            )));
        }
        let elem = buf.elem;
        for (dst, &src) in buf.data.iter_mut().zip(contents) {
            *dst = round_to(elem, src);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut mem = Memory::new();
        mem.alloc("a", ScalarType::F32, 8, MemoryType::Heap)
            .unwrap();
        mem.write("a", &[0, 1, 2], &[1.0, 2.0, 3.0]).unwrap();
        let v = mem.read("a", &[2, 1, 0]).unwrap();
        assert_eq!(v, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn duplicate_alloc_fails() {
        let mut mem = Memory::new();
        mem.alloc("a", ScalarType::F32, 4, MemoryType::Heap)
            .unwrap();
        assert!(mem
            .alloc("a", ScalarType::F32, 4, MemoryType::Heap)
            .is_err());
        mem.free("a").unwrap();
        assert!(mem.alloc("a", ScalarType::F32, 4, MemoryType::Heap).is_ok());
        assert!(mem.free("zzz").is_err());
    }

    #[test]
    fn oob_accesses_error() {
        let mut mem = Memory::new();
        mem.alloc("a", ScalarType::F32, 4, MemoryType::Heap)
            .unwrap();
        assert!(mem.read("a", &[4]).is_err());
        assert!(mem.read("a", &[-1]).is_err());
        assert!(mem.write("a", &[9], &[0.0]).is_err());
        assert!(mem.read("nope", &[0]).is_err());
    }

    #[test]
    fn bf16_storage_rounds() {
        let mut mem = Memory::new();
        mem.alloc("w", ScalarType::BF16, 1, MemoryType::Heap)
            .unwrap();
        mem.write("w", &[0], &[1.0 + 2f64.powi(-12)]).unwrap();
        assert_eq!(mem.read("w", &[0]).unwrap()[0], 1.0);
    }

    #[test]
    fn dram_counts_footprint_l1_counts_accesses() {
        let mut mem = Memory::new();
        mem.alloc("a", ScalarType::F32, 16, MemoryType::Heap)
            .unwrap();
        // Read the same 4 elements three times.
        for _ in 0..3 {
            mem.read("a", &[0, 1, 2, 3]).unwrap();
        }
        assert_eq!(
            mem.counters.dram_read_bytes,
            4 * 4,
            "footprint counted once"
        );
        assert_eq!(mem.counters.l1_bytes, 3 * 4 * 4, "every access hits L1");
    }

    #[test]
    fn shared_memory_counts_separately() {
        let mut mem = Memory::new();
        mem.alloc("s", ScalarType::F32, 8, MemoryType::GpuShared)
            .unwrap();
        mem.write("s", &[0, 1], &[1.0, 2.0]).unwrap();
        mem.read("s", &[0, 1]).unwrap();
        assert_eq!(mem.counters.shared_bytes, 2 * 4 + 2 * 4);
        assert_eq!(mem.counters.dram_bytes(), 0);
        assert_eq!(mem.counters.l1_bytes, 0);
    }

    #[test]
    fn register_buffers_cost_nothing() {
        let mut mem = Memory::new();
        mem.alloc("t", ScalarType::F32, 512, MemoryType::AmxTile)
            .unwrap();
        mem.write("t", &[0], &[1.0]).unwrap();
        mem.read("t", &[0]).unwrap();
        assert_eq!(mem.counters, CostCounters::default());
    }

    #[test]
    fn alloc_init_and_snapshot() {
        let mut mem = Memory::new();
        mem.alloc_init("k", ScalarType::F16, MemoryType::Heap, &[0.5, 0.25])
            .unwrap();
        assert_eq!(mem.snapshot("k").unwrap(), vec![0.5, 0.25]);
        mem.poke("k", &[1.0, 2.0]).unwrap();
        assert_eq!(mem.snapshot("k").unwrap(), vec![1.0, 2.0]);
        assert!(mem.poke("k", &[1.0]).is_err());
        assert_eq!(mem.counters.l1_bytes, 0, "harness paths are uncounted");
    }
}
