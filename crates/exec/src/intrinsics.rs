//! Accelerator intrinsics: the calls HARDBOILED's lowering rules emit,
//! interpreted against the `hb-accel` functional units.
//!
//! | intrinsic | signature | role |
//! |---|---|---|
//! | `tile_zero()` | `-> f32xN` | AMX `tilezero` |
//! | `tile_load(buf, base, stride, rows)` | `-> bf16xN` | AMX `tileloadd` |
//! | `tile_matmul(c, a, b, m, k, n)` | `-> f32x(m·n)` | AMX `tdpbf16ps` (B in VNNI) |
//! | `tile_store(buf, base, stride, rows, tile)` | side effect | AMX `tilestored` |
//! | `wmma_load_a(buf, base, ld, m, k)` | `-> f16x(m·k)` | `wmma.load.a.sync` |
//! | `wmma_load_b(buf, base, ld, k, n)` | `-> f16x(k·n)` | `wmma.load.b.sync` |
//! | `wmma_mma(a, b, c, m, n, k)` | `-> f32x(m·n)` | `wmma.mma.sync` |
//! | `wmma_store(buf, base, ld, m, n, acc)` | side effect | `wmma.store.d.sync` |
//! | `kway_interleave(ways, rows, v)` | `-> same lanes` | VNNI swizzle |
//! | `convolution_shuffle(buf, base, rows, taps, stride)` | `-> rows×n` | Toeplitz build |
//!
//! Buffer arguments are passed as `Var` nodes naming the buffer; shape
//! arguments are scalar expressions evaluated at run time.

use hb_accel::amx::TileDtype;
use hb_accel::wmma::{Fragment, FragmentKind, MatrixLayout, WmmaShape};
use hb_ir::expr::Expr;
use hb_ir::types::Type;

use crate::buffer::{ExecError, ExecResult};
use crate::interp::Interp;
use crate::value::Value;

fn buffer_name(e: &Expr) -> ExecResult<&str> {
    match e {
        Expr::Var(name, _) => Ok(name),
        other => Err(ExecError(format!(
            "intrinsic expected a buffer-name Var, got {other}"
        ))),
    }
}

fn scalar(it: &mut Interp, e: &Expr) -> ExecResult<i64> {
    Ok(it.eval(e)?.as_i64())
}

fn expect_args(name: &str, args: &[Expr], n: usize) -> ExecResult<()> {
    if args.len() == n {
        Ok(())
    } else {
        Err(ExecError(format!(
            "{name} expects {n} arguments, got {}",
            args.len()
        )))
    }
}

/// Gathers a `rows × cols` row-major region starting at `base` with leading
/// dimension `ld` from a buffer (with cost accounting).
fn gather_matrix(
    it: &mut Interp,
    buf: &str,
    base: i64,
    ld: i64,
    rows: i64,
    cols: i64,
) -> ExecResult<Vec<f64>> {
    let mut indices = Vec::with_capacity((rows * cols) as usize);
    for r in 0..rows {
        for c in 0..cols {
            indices.push(base + r * ld + c);
        }
    }
    it.mem.read(buf, &indices)
}

/// Dispatches an intrinsic call.
///
/// # Errors
///
/// Fails on unknown intrinsics, malformed arguments, or accelerator errors.
pub fn dispatch(it: &mut Interp, name: &str, args: &[Expr], ty: Type) -> ExecResult<Value> {
    match name {
        "tile_zero" => {
            expect_args(name, args, 0)?;
            Ok(Value::zero(ty))
        }
        "tile_load" => {
            expect_args(name, args, 4)?;
            let buf = buffer_name(&args[0])?.to_string();
            let base = scalar(it, &args[1])?;
            let stride = scalar(it, &args[2])?;
            let rows = scalar(it, &args[3])?;
            let lanes = i64::from(ty.lanes);
            if rows <= 0 || lanes % rows != 0 {
                return Err(ExecError(format!(
                    "tile_load: rows {rows} does not divide lanes {lanes}"
                )));
            }
            let cols = lanes / rows;
            let data = gather_matrix(it, &buf, base, stride, rows, cols)?;
            Ok(Value::new(ty, data))
        }
        "tile_store" => {
            expect_args(name, args, 5)?;
            let buf = buffer_name(&args[0])?.to_string();
            let base = scalar(it, &args[1])?;
            let stride = scalar(it, &args[2])?;
            let rows = scalar(it, &args[3])?;
            let tile = it.eval(&args[4])?;
            let lanes = tile.lanes() as i64;
            if rows <= 0 || lanes % rows != 0 {
                return Err(ExecError(format!(
                    "tile_store: rows {rows} does not divide lanes {lanes}"
                )));
            }
            let cols = lanes / rows;
            let mut indices = Vec::with_capacity(lanes as usize);
            for r in 0..rows {
                for c in 0..cols {
                    indices.push(base + r * stride + c);
                }
            }
            it.mem.write(&buf, &indices, &tile.data)?;
            Ok(Value::int(0))
        }
        "tile_matmul" => {
            expect_args(name, args, 6)?;
            let c = it.eval(&args[0])?;
            let a = it.eval(&args[1])?;
            let b = it.eval(&args[2])?;
            let m = scalar(it, &args[3])? as usize;
            let k = scalar(it, &args[4])? as usize;
            let n = scalar(it, &args[5])? as usize;
            tile_matmul(it, &c, &a, &b, m, k, n)
        }
        "wmma_load_a" | "wmma_load_b" => {
            expect_args(name, args, 5)?;
            let buf = buffer_name(&args[0])?.to_string();
            let base = scalar(it, &args[1])?;
            let ld = scalar(it, &args[2])?;
            let r = scalar(it, &args[3])?;
            let c = scalar(it, &args[4])?;
            if (r * c) as u32 != ty.lanes {
                return Err(ExecError(format!(
                    "{name}: shape {r}x{c} does not match {} lanes",
                    ty.lanes
                )));
            }
            let data = gather_matrix(it, &buf, base, ld, r, c)?;
            // f16 rounding happens in buffer storage; fragments reround in
            // case the source buffer is wider.
            let data = data.iter().map(|&v| hb_ir::numeric::round_f16(v)).collect();
            Ok(Value::new(ty, data))
        }
        "wmma_mma" => {
            expect_args(name, args, 6)?;
            let a = it.eval(&args[0])?;
            let b = it.eval(&args[1])?;
            let c = it.eval(&args[2])?;
            let m = scalar(it, &args[3])? as usize;
            let n = scalar(it, &args[4])? as usize;
            let k = scalar(it, &args[5])? as usize;
            wmma_mma(it, &a, &b, &c, m, n, k)
        }
        "wmma_store" => {
            expect_args(name, args, 6)?;
            let buf = buffer_name(&args[0])?.to_string();
            let base = scalar(it, &args[1])?;
            let ld = scalar(it, &args[2])?;
            let m = scalar(it, &args[3])?;
            let n = scalar(it, &args[4])?;
            let acc = it.eval(&args[5])?;
            if (m * n) as usize != acc.lanes() {
                return Err(ExecError(format!(
                    "wmma_store: {m}x{n} vs {} lanes",
                    acc.lanes()
                )));
            }
            let mut indices = Vec::with_capacity(acc.lanes());
            for r in 0..m {
                for c in 0..n {
                    indices.push(base + r * ld + c);
                }
            }
            it.mem.write(&buf, &indices, &acc.data)?;
            Ok(Value::int(0))
        }
        "wmma_mma_cols" => {
            // Partial-width accumulate: C (m×n_valid) is zero-padded into an
            // m×n tile, a full mma_sync runs, and the valid columns are
            // extracted. Used for strided (downsampling) Toeplitz matmuls
            // whose trailing tile columns carry incomplete sums.
            expect_args(name, args, 7)?;
            let a = it.eval(&args[0])?;
            let b = it.eval(&args[1])?;
            let c = it.eval(&args[2])?;
            let m = scalar(it, &args[3])? as usize;
            let n_valid = scalar(it, &args[4])? as usize;
            let n = scalar(it, &args[5])? as usize;
            let k = scalar(it, &args[6])? as usize;
            if c.lanes() != m * n_valid || n_valid > n {
                return Err(ExecError(format!(
                    "wmma_mma_cols: c has {} lanes for m{m} n_valid{n_valid}",
                    c.lanes()
                )));
            }
            let mut c_full = vec![0.0f64; m * n];
            for r in 0..m {
                for cc in 0..n_valid {
                    c_full[r * n + cc] = c.data[r * n_valid + cc];
                }
            }
            let c_full = Value::new(Type::f32().with_lanes((m * n) as u32), c_full);
            let full = wmma_mma(it, &a, &b, &c_full, m, n, k)?;
            let mut out = Vec::with_capacity(m * n_valid);
            for r in 0..m {
                for cc in 0..n_valid {
                    out.push(full.data[r * n + cc]);
                }
            }
            Ok(Value::new(ty, out))
        }
        "kway_interleave" => {
            expect_args(name, args, 3)?;
            let ways = scalar(it, &args[0])? as usize;
            let rows = scalar(it, &args[1])? as usize;
            let v = it.eval(&args[2])?;
            kway_interleave(ways, rows, &v)
        }
        "upsample_shuffle" => {
            // Multiphase Toeplitz matrix of §V-B: for a phase-major kernel
            // buffer Kp (index = phase + phases·tap),
            //   out[t·cols + c] = Kp[base + c%p + p·(t − c/p)]
            // when 0 ≤ t − c/p < taps, else 0.
            expect_args(name, args, 5)?;
            let buf = buffer_name(&args[0])?.to_string();
            let base = scalar(it, &args[1])?;
            let rows = scalar(it, &args[2])?;
            let taps = scalar(it, &args[3])?;
            let phases = scalar(it, &args[4])?;
            let lanes = i64::from(ty.lanes);
            if rows <= 0 || phases <= 0 || lanes % rows != 0 {
                return Err(ExecError(format!(
                    "upsample_shuffle: rows {rows} phases {phases} lanes {lanes}"
                )));
            }
            let cols = lanes / rows;
            let tap_idx: Vec<i64> = (0..taps * phases).map(|t| base + t).collect();
            let kern = it.mem.read(&buf, &tap_idx)?;
            let mut out = vec![0.0f64; lanes as usize];
            for t in 0..rows {
                for c in 0..cols {
                    let tap = t - c / phases;
                    if tap >= 0 && tap < taps {
                        let idx = (c % phases) + phases * tap;
                        out[(t * cols + c) as usize] = kern[idx as usize];
                    }
                }
            }
            Ok(Value::new(ty, out))
        }
        "convolution_shuffle" => {
            expect_args(name, args, 5)?;
            let buf = buffer_name(&args[0])?.to_string();
            let base = scalar(it, &args[1])?;
            let rows = scalar(it, &args[2])?;
            let taps = scalar(it, &args[3])?;
            let stride = scalar(it, &args[4])?;
            convolution_shuffle(it, &buf, base, rows, taps, stride, ty)
        }
        other => Err(ExecError(format!("unknown intrinsic {other}"))),
    }
}

/// `tdpbf16ps` through the AMX unit: `C(m×n) += A(m×k)·B(vnni k/2×2n)`.
fn tile_matmul(
    it: &mut Interp,
    c: &Value,
    a: &Value,
    b: &Value,
    m: usize,
    k: usize,
    n: usize,
) -> ExecResult<Value> {
    if a.lanes() != m * k || b.lanes() != k * n || c.lanes() != m * n {
        return Err(ExecError(format!(
            "tile_matmul shape mismatch: a={} b={} c={} for m{m} k{k} n{n}",
            a.lanes(),
            b.lanes(),
            c.lanes()
        )));
    }
    if !k.is_multiple_of(2) {
        return Err(ExecError("tile_matmul requires even K (bf16 pairs)".into()));
    }
    let amx_err = |e: hb_accel::amx::AmxError| ExecError(e.to_string());
    it.amx.configure(0, m, n, TileDtype::F32).map_err(amx_err)?;
    it.amx
        .configure(1, m, k, TileDtype::Bf16)
        .map_err(amx_err)?;
    it.amx
        .configure(2, k / 2, 2 * n, TileDtype::Bf16)
        .map_err(amx_err)?;
    it.amx.tileload(0, &c.to_f32(), n).map_err(amx_err)?;
    it.amx.tileload(1, &a.to_f32(), k).map_err(amx_err)?;
    it.amx.tileload(2, &b.to_f32(), 2 * n).map_err(amx_err)?;
    it.amx.tdpbf16ps(0, 1, 2).map_err(amx_err)?;
    let mut out = vec![0.0f32; m * n];
    it.amx.tilestore(0, &mut out, n).map_err(amx_err)?;
    Ok(Value::new(
        Type::f32().with_lanes((m * n) as u32),
        out.into_iter().map(f64::from).collect(),
    ))
}

/// `wmma.mma.sync` through the tensor-core unit.
fn wmma_mma(
    it: &mut Interp,
    a: &Value,
    b: &Value,
    c: &Value,
    m: usize,
    n: usize,
    k: usize,
) -> ExecResult<Value> {
    let shape = WmmaShape { m, n, k };
    let werr = |e: hb_accel::wmma::WmmaError| ExecError(e.to_string());
    if a.lanes() != m * k || b.lanes() != k * n || c.lanes() != m * n {
        return Err(ExecError(format!(
            "wmma_mma shape mismatch: a={} b={} c={} for {shape}",
            a.lanes(),
            b.lanes(),
            c.lanes()
        )));
    }
    let mut fa = Fragment::new(FragmentKind::MatrixA, shape).map_err(werr)?;
    let mut fb = Fragment::new(FragmentKind::MatrixB, shape).map_err(werr)?;
    let mut fc = Fragment::new(FragmentKind::Accumulator, shape).map_err(werr)?;
    fa.load(&a.to_f32(), k, MatrixLayout::RowMajor)
        .map_err(werr)?;
    fb.load(&b.to_f32(), n, MatrixLayout::RowMajor)
        .map_err(werr)?;
    fc.load(&c.to_f32(), n, MatrixLayout::RowMajor)
        .map_err(werr)?;
    let mut fd = fc.clone();
    it.tc.mma_sync(&mut fd, &fa, &fb, &fc).map_err(werr)?;
    let mut out = vec![0.0f32; m * n];
    fd.store(&mut out, n, MatrixLayout::RowMajor)
        .map_err(werr)?;
    Ok(Value::new(
        Type::f32().with_lanes((m * n) as u32),
        out.into_iter().map(f64::from).collect(),
    ))
}

/// VNNI-style k-way interleave of a `rows × cols` row-major value:
/// groups `ways` consecutive rows and interleaves their elements.
fn kway_interleave(ways: usize, rows: usize, v: &Value) -> ExecResult<Value> {
    if ways == 0 || rows == 0 || !rows.is_multiple_of(ways) || !v.lanes().is_multiple_of(rows) {
        return Err(ExecError(format!(
            "kway_interleave: invalid ways={ways} rows={rows} lanes={}",
            v.lanes()
        )));
    }
    let cols = v.lanes() / rows;
    let mut out = vec![0.0f64; v.lanes()];
    for g in 0..rows / ways {
        for c in 0..cols {
            for w in 0..ways {
                out[g * ways * cols + c * ways + w] = v.data[(g * ways + w) * cols + c];
            }
        }
    }
    Ok(Value::new(v.ty, out))
}

/// Builds the (strided) Toeplitz matrix `A_K` of §V-A/§V-B from a kernel
/// buffer: `out[j·n + i] = K[base + j − stride·i]` when
/// `0 ≤ j − stride·i < taps`, else 0. The output is `rows × n` row-major
/// with `n = ty.lanes / rows`.
fn convolution_shuffle(
    it: &mut Interp,
    buf: &str,
    base: i64,
    rows: i64,
    taps: i64,
    stride: i64,
    ty: Type,
) -> ExecResult<Value> {
    let lanes = i64::from(ty.lanes);
    if rows <= 0 || lanes % rows != 0 {
        return Err(ExecError(format!(
            "convolution_shuffle: rows {rows} does not divide lanes {lanes}"
        )));
    }
    let n = lanes / rows;
    // Read the kernel taps once (counted).
    let tap_idx: Vec<i64> = (0..taps).map(|t| base + t).collect();
    let kern = it.mem.read(buf, &tap_idx)?;
    let mut out = vec![0.0f64; lanes as usize];
    for j in 0..rows {
        for i in 0..n {
            let off = j - stride * i;
            if off >= 0 && off < taps {
                out[(j * n + i) as usize] = kern[off as usize];
            }
        }
    }
    Ok(Value::new(ty, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_ir::builder::*;
    use hb_ir::types::{MemoryType, ScalarType};

    fn interp() -> Interp {
        Interp::new()
    }

    #[test]
    fn tile_zero_makes_zeros() {
        let mut it = interp();
        let e = call(Type::f32().with_lanes(256), "tile_zero", vec![]);
        let v = it.eval(&e).unwrap();
        assert!(v.data.iter().all(|&x| x == 0.0));
        assert_eq!(v.lanes(), 256);
    }

    #[test]
    fn tile_load_matmul_store_roundtrip() {
        // 16x32 (bf16) x 32x16 = 16x16 via the AMX path, vs naive.
        let (m, k, n) = (16i64, 32i64, 16i64);
        let mut it = interp();
        let a: Vec<f64> = (0..m * k).map(|i| ((i % 13) - 6) as f64 * 0.25).collect();
        let b: Vec<f64> = (0..k * n).map(|i| ((i % 7) - 3) as f64 * 0.5).collect();
        it.mem
            .alloc_init("A", ScalarType::BF16, MemoryType::Heap, &a)
            .unwrap();
        it.mem
            .alloc_init("Bv", ScalarType::BF16, MemoryType::Heap, &vnni(&b, k, n))
            .unwrap();
        it.mem
            .alloc("C", ScalarType::F32, (m * n) as usize, MemoryType::Heap)
            .unwrap();

        let lanes_a = (m * k) as u32;
        let lanes_b = (k * n) as u32;
        let lanes_c = (m * n) as u32;
        let load_a = call(
            Type::bf16().with_lanes(lanes_a),
            "tile_load",
            vec![var("A"), int(0), int(k), int(m)],
        );
        let load_b = call(
            Type::bf16().with_lanes(lanes_b),
            "tile_load",
            vec![var("Bv"), int(0), int(2 * n), int(k / 2)],
        );
        let zero = call(Type::f32().with_lanes(lanes_c), "tile_zero", vec![]);
        let mm = call(
            Type::f32().with_lanes(lanes_c),
            "tile_matmul",
            vec![zero, load_a, load_b, int(m), int(k), int(n)],
        );
        let st = evaluate(call(
            Type::i32(),
            "tile_store",
            vec![var("C"), int(0), int(n), int(m), mm],
        ));
        it.exec(&st).unwrap();

        let got = it.mem.snapshot("C").unwrap();
        for mi in 0..m {
            for ni in 0..n {
                let mut want = 0.0;
                for ki in 0..k {
                    want += a[(mi * k + ki) as usize] * b[(ki * n + ni) as usize];
                }
                let g = got[(mi * n + ni) as usize];
                assert!(
                    (g - want).abs() <= 0.02 * want.abs().max(1.0),
                    "{g} vs {want}"
                );
            }
        }
        assert_eq!(it.counters().tensor_fmas, (m * n * k) as u64);
    }

    fn vnni(b: &[f64], k: i64, n: i64) -> Vec<f64> {
        let mut out = vec![0.0; (k * n) as usize];
        for kk in 0..k / 2 {
            for nn in 0..n {
                out[(kk * 2 * n + 2 * nn) as usize] = b[((2 * kk) * n + nn) as usize];
                out[(kk * 2 * n + 2 * nn + 1) as usize] = b[((2 * kk + 1) * n + nn) as usize];
            }
        }
        out
    }

    #[test]
    fn wmma_path_matches_naive() {
        let (m, n, k) = (32i64, 8i64, 16i64);
        let mut it = interp();
        let a: Vec<f64> = (0..m * k).map(|i| ((i % 9) - 4) as f64 * 0.25).collect();
        let b: Vec<f64> = (0..k * n).map(|i| ((i % 5) - 2) as f64 * 0.5).collect();
        it.mem
            .alloc_init("I", ScalarType::F16, MemoryType::Heap, &a)
            .unwrap();
        it.mem
            .alloc_init("K", ScalarType::F16, MemoryType::Heap, &b)
            .unwrap();
        it.mem
            .alloc("O", ScalarType::F32, (m * n) as usize, MemoryType::Heap)
            .unwrap();

        let la = call(
            Type::f16().with_lanes((m * k) as u32),
            "wmma_load_a",
            vec![var("I"), int(0), int(k), int(m), int(k)],
        );
        let lb = call(
            Type::f16().with_lanes((k * n) as u32),
            "wmma_load_b",
            vec![var("K"), int(0), int(n), int(k), int(n)],
        );
        let zero = call(Type::f32().with_lanes((m * n) as u32), "tile_zero", vec![]);
        let mma = call(
            Type::f32().with_lanes((m * n) as u32),
            "wmma_mma",
            vec![la, lb, zero, int(m), int(n), int(k)],
        );
        let st = evaluate(call(
            Type::i32(),
            "wmma_store",
            vec![var("O"), int(0), int(n), int(m), int(n), mma],
        ));
        it.exec(&st).unwrap();

        let got = it.mem.snapshot("O").unwrap();
        for mi in 0..m {
            for ni in 0..n {
                let mut want = 0.0;
                for ki in 0..k {
                    want += a[(mi * k + ki) as usize] * b[(ki * n + ni) as usize];
                }
                let g = got[(mi * n + ni) as usize];
                assert!((g - want).abs() <= 0.02 * want.abs().max(1.0));
            }
        }
        assert_eq!(it.counters().tensor_fmas, (m * n * k) as u64);
    }

    #[test]
    fn kway_interleave_is_vnni() {
        let mut it = interp();
        it.mem
            .alloc_init(
                "B",
                ScalarType::F32,
                MemoryType::Heap,
                &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
            )
            .unwrap();
        // 4x2 matrix interleaved 2-way -> [1,3,2,4, 5,7,6,8].
        let ld = load(Type::f32().with_lanes(8), "B", ramp(int(0), int(1), 8));
        let e = call(
            Type::f32().with_lanes(8),
            "kway_interleave",
            vec![int(2), int(4), ld],
        );
        let v = it.eval(&e).unwrap();
        assert_eq!(v.data, vec![1.0, 3.0, 2.0, 4.0, 5.0, 7.0, 6.0, 8.0]);
    }

    #[test]
    fn convolution_shuffle_builds_toeplitz() {
        let mut it = interp();
        it.mem
            .alloc_init("K", ScalarType::F16, MemoryType::Heap, &[10.0, 20.0, 30.0])
            .unwrap();
        // rows=4, taps=3, stride=1, n=2:
        // out[j][i] = K[j - i] if 0 <= j-i < 3.
        let e = call(
            Type::f16().with_lanes(8),
            "convolution_shuffle",
            vec![var("K"), int(0), int(4), int(3), int(1)],
        );
        let v = it.eval(&e).unwrap();
        #[rustfmt::skip]
        assert_eq!(
            v.data,
            vec![
                10.0, 0.0,   // j=0: K[0], pad
                20.0, 10.0,  // j=1: K[1], K[0]
                30.0, 20.0,  // j=2
                0.0, 30.0,   // j=3: pad, K[2]
            ]
        );
    }

    #[test]
    fn strided_shuffle_for_downsampling() {
        let mut it = interp();
        it.mem
            .alloc_init("K", ScalarType::F16, MemoryType::Heap, &[1.0, 2.0])
            .unwrap();
        // stride=2 (downsample by 2): out[j][i] = K[j - 2i] if 0<=j-2i<2.
        let e = call(
            Type::f16().with_lanes(8),
            "convolution_shuffle",
            vec![var("K"), int(0), int(4), int(2), int(2)],
        );
        let v = it.eval(&e).unwrap();
        #[rustfmt::skip]
        assert_eq!(
            v.data,
            vec![
                1.0, 0.0,  // j=0: K[0], --
                2.0, 0.0,  // j=1: K[1], --
                0.0, 1.0,  // j=2: --, K[0]
                0.0, 2.0,  // j=3: --, K[1]
            ]
        );
    }

    #[test]
    fn errors_on_malformed_calls() {
        let mut it = interp();
        assert!(it
            .eval(&call(Type::f32(), "no_such_intrinsic", vec![]))
            .is_err());
        assert!(it
            .eval(&call(Type::f32(), "tile_load", vec![int(0)]))
            .is_err());
        // Buffer arg must be a Var.
        assert!(it
            .eval(&call(
                Type::f32().with_lanes(4),
                "tile_load",
                vec![int(0), int(0), int(1), int(2)],
            ))
            .is_err());
        // Unsupported WMMA shape.
        let zero = call(Type::f32().with_lanes(4), "tile_zero", vec![]);
        let a = call(Type::f16().with_lanes(4), "tile_zero", vec![]);
        let b = call(Type::f16().with_lanes(4), "tile_zero", vec![]);
        assert!(it
            .eval(&call(
                Type::f32().with_lanes(4),
                "wmma_mma",
                vec![a, b, zero, int(2), int(2), int(2)],
            ))
            .is_err());
    }
}
