//! Runtime values: typed vectors of lanes.
//!
//! All lanes are stored as `f64`, which represents every `int32`, `float32`,
//! `bfloat16` and `float16` value exactly; reduced-precision storage effects
//! are applied at cast/load/store boundaries via [`hb_ir::numeric`].

use hb_ir::types::{ScalarType, Type};

/// A typed vector value.
#[derive(Debug, Clone, PartialEq)]
pub struct Value {
    /// The value's IR type.
    pub ty: Type,
    /// Lane contents (`ty.lanes` entries).
    pub data: Vec<f64>,
}

impl Value {
    /// Creates a value, checking the lane count.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != ty.lanes`.
    #[must_use]
    pub fn new(ty: Type, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), ty.lanes as usize, "lane count mismatch");
        Value { ty, data }
    }

    /// A scalar `int32`.
    #[must_use]
    pub fn int(v: i64) -> Self {
        Value::new(Type::i32(), vec![v as f64])
    }

    /// A scalar of the given float element type.
    #[must_use]
    pub fn float(v: f64, st: ScalarType) -> Self {
        Value::new(Type::new(st, 1), vec![v])
    }

    /// An all-zero value of the given type.
    #[must_use]
    pub fn zero(ty: Type) -> Self {
        Value::new(ty, vec![0.0; ty.lanes as usize])
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.data.len()
    }

    /// The single lane of a scalar, as `i64`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not scalar.
    #[must_use]
    pub fn as_i64(&self) -> i64 {
        assert_eq!(self.lanes(), 1, "expected a scalar");
        self.data[0] as i64
    }

    /// Lanes converted to `i64` (for index vectors).
    #[must_use]
    pub fn to_indices(&self) -> Vec<i64> {
        self.data.iter().map(|&v| v as i64).collect()
    }

    /// Lanes as `f32` (for handing to the accelerator simulators).
    #[must_use]
    pub fn to_f32(&self) -> Vec<f32> {
        self.data.iter().map(|&v| v as f32).collect()
    }

    /// Repeats the whole vector `n` times (broadcast semantics).
    #[must_use]
    pub fn broadcast(&self, n: u32) -> Value {
        let mut data = Vec::with_capacity(self.data.len() * n as usize);
        for _ in 0..n {
            data.extend_from_slice(&self.data);
        }
        Value::new(self.ty.with_lanes(self.ty.lanes * n), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let v = Value::int(42);
        assert_eq!(v.as_i64(), 42);
        assert_eq!(v.lanes(), 1);
        let z = Value::zero(Type::f32().with_lanes(4));
        assert_eq!(z.data, vec![0.0; 4]);
    }

    #[test]
    fn broadcast_repeats() {
        let v = Value::new(Type::i32().with_lanes(2), vec![1.0, 2.0]);
        let b = v.broadcast(3);
        assert_eq!(b.data, vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        assert_eq!(b.ty.lanes, 6);
    }

    #[test]
    #[should_panic(expected = "lane count mismatch")]
    fn lane_mismatch_panics() {
        let _ = Value::new(Type::i32().with_lanes(3), vec![0.0]);
    }

    #[test]
    fn index_conversion() {
        let v = Value::new(Type::i32().with_lanes(3), vec![0.0, 5.0, 10.0]);
        assert_eq!(v.to_indices(), vec![0, 5, 10]);
    }
}
