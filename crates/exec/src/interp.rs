//! The IR interpreter.
//!
//! Executes lowered `hb-ir` statements over simulated [`Memory`], dispatching
//! accelerator intrinsics into the `hb-accel` functional units, and counting
//! the work performed (CUDA FLOPs, tensor FMAs, bytes per memory level) for
//! the roofline performance model.

use std::collections::HashMap;

use hb_accel::amx::AmxUnit;
use hb_accel::counters::CostCounters;
use hb_accel::wmma::TensorCoreUnit;
use hb_ir::expr::{BinOp, Expr};
use hb_ir::numeric::round_to;
use hb_ir::stmt::{ForKind, Stmt};
use hb_ir::types::ScalarType;

use crate::buffer::{ExecError, ExecResult, Memory};
use crate::intrinsics;
use crate::value::Value;

/// Interpreter state: memory, loop environment, accelerator units, counters.
#[derive(Debug, Clone, Default)]
pub struct Interp {
    /// Simulated memory (owns the byte counters).
    pub mem: Memory,
    /// Loop-variable bindings.
    env: HashMap<String, i64>,
    /// AMX tile unit.
    pub amx: AmxUnit,
    /// Tensor-core unit.
    pub tc: TensorCoreUnit,
    /// Scalar/SIMT float operations executed outside accelerator intrinsics.
    pub cuda_flops: u64,
    /// Kernel launches recorded via [`Interp::run_kernel`].
    pub kernel_launches: u64,
}

impl Interp {
    /// Fresh interpreter with empty memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Assembles the full cost-counter set for the work executed so far.
    #[must_use]
    pub fn counters(&self) -> CostCounters {
        let mut c = self.mem.counters;
        c.tensor_fmas = self.amx.fmas + self.tc.fmas;
        c.cuda_flops = self.cuda_flops;
        c.kernel_launches = self.kernel_launches;
        c
    }

    /// Binds a loop/parameter variable for the duration of the run.
    pub fn bind(&mut self, name: &str, v: i64) {
        self.env.insert(name.to_string(), v);
    }

    /// Current binding of a variable.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<i64> {
        self.env.get(name).copied()
    }

    /// Runs a statement as one GPU kernel (counts a launch).
    ///
    /// # Errors
    ///
    /// Propagates any execution error.
    pub fn run_kernel(&mut self, stmt: &Stmt) -> ExecResult<()> {
        self.kernel_launches += 1;
        self.exec(stmt)
    }

    /// Executes a statement tree.
    ///
    /// # Errors
    ///
    /// Fails on out-of-bounds accesses, unknown buffers/variables, or
    /// malformed intrinsic calls.
    pub fn exec(&mut self, stmt: &Stmt) -> ExecResult<()> {
        match stmt {
            Stmt::Store {
                buffer,
                index,
                value,
            } => {
                let idx = self.eval(index)?;
                let val = self.eval(value)?;
                self.mem.write(buffer, &idx.to_indices(), &val.data)
            }
            Stmt::Evaluate(e) => {
                let _ = self.eval(e)?;
                Ok(())
            }
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.exec(s)?;
                }
                Ok(())
            }
            Stmt::For {
                var,
                min,
                extent,
                kind,
                body,
            } => {
                let min = self.eval(min)?.as_i64();
                let extent = self.eval(extent)?.as_i64();
                let saved = self.env.get(var).copied();
                if *kind == ForKind::GpuLane {
                    // Warp-synchronous: WMMA statements execute once for the
                    // whole warp (the functional simulator holds whole tiles).
                    self.env.insert(var.clone(), min);
                    self.exec(body)?;
                } else {
                    for i in min..min + extent {
                        self.env.insert(var.clone(), i);
                        self.exec(body)?;
                    }
                }
                match saved {
                    Some(v) => self.env.insert(var.clone(), v),
                    None => self.env.remove(var),
                };
                Ok(())
            }
            Stmt::Allocate {
                name,
                elem,
                size,
                memory,
                body,
            } => {
                self.mem.alloc(name, *elem, *size as usize, *memory)?;
                let result = self.exec(body);
                self.mem.free(name)?;
                result
            }
            Stmt::If { cond, then_case } => {
                let c = self.eval(cond)?;
                if c.as_i64() != 0 {
                    self.exec(then_case)?;
                }
                Ok(())
            }
        }
    }

    /// Evaluates an expression to a [`Value`].
    ///
    /// # Errors
    ///
    /// Fails on unknown variables/buffers or intrinsic misuse.
    pub fn eval(&mut self, e: &Expr) -> ExecResult<Value> {
        match e {
            Expr::IntImm(v) => Ok(Value::int(*v)),
            Expr::FloatImm(v, st) => Ok(Value::float(round_to(*st, *v), *st)),
            Expr::Var(name, st) => {
                let v = self
                    .env
                    .get(name)
                    .copied()
                    .ok_or_else(|| ExecError(format!("unbound variable {name}")))?;
                Ok(Value::new(hb_ir::types::Type::new(*st, 1), vec![v as f64]))
            }
            Expr::Cast(ty, v) => {
                let val = self.eval(v)?;
                let data = val.data.iter().map(|&x| round_to(ty.elem, x)).collect();
                Ok(Value::new(*ty, data))
            }
            Expr::Binary(op, a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                self.eval_binary(*op, &va, &vb)
            }
            Expr::Select(c, t, f) => {
                let vc = self.eval(c)?;
                let vt = self.eval(t)?;
                let vf = self.eval(f)?;
                let data = vc
                    .data
                    .iter()
                    .zip(vt.data.iter().zip(vf.data.iter()))
                    .map(|(&c, (&t, &f))| if c != 0.0 { t } else { f })
                    .collect();
                Ok(Value::new(vt.ty, data))
            }
            Expr::Ramp {
                base,
                stride,
                lanes,
            } => {
                let vb = self.eval(base)?;
                let vs = self.eval(stride)?;
                let inner = vb.lanes();
                let mut data = Vec::with_capacity(inner * *lanes as usize);
                for i in 0..i64::from(*lanes) {
                    for j in 0..inner {
                        data.push(vb.data[j] + i as f64 * vs.data[j]);
                    }
                }
                Ok(Value::new(vb.ty.with_lanes(vb.ty.lanes * lanes), data))
            }
            Expr::Broadcast { value, lanes } => Ok(self.eval(value)?.broadcast(*lanes)),
            Expr::Load { ty, buffer, index } => {
                let idx = self.eval(index)?;
                let data = self.mem.read(buffer, &idx.to_indices())?;
                Ok(Value::new(*ty, data))
            }
            Expr::VectorReduceAdd { lanes, value } => {
                let v = self.eval(value)?;
                let out_lanes = *lanes as usize;
                if v.lanes() % out_lanes != 0 {
                    return Err(ExecError(format!(
                        "vector_reduce_add: {} lanes not divisible by {out_lanes}",
                        v.lanes()
                    )));
                }
                let group = v.lanes() / out_lanes;
                let mut data = Vec::with_capacity(out_lanes);
                for i in 0..out_lanes {
                    data.push(v.data[i * group..(i + 1) * group].iter().sum());
                }
                if v.ty.elem.is_float() {
                    self.cuda_flops += (v.lanes() - out_lanes) as u64;
                }
                Ok(Value::new(v.ty.with_lanes(*lanes), data))
            }
            Expr::Call { ty, name, args } => intrinsics::dispatch(self, name, args, *ty),
            Expr::LocToLoc { value, .. } => self.eval(value),
        }
    }

    fn eval_binary(&mut self, op: BinOp, a: &Value, b: &Value) -> ExecResult<Value> {
        if a.lanes() != b.lanes() {
            return Err(ExecError(format!(
                "binary lane mismatch: {} vs {}",
                a.lanes(),
                b.lanes()
            )));
        }
        let int_ty = a.ty.elem == ScalarType::I32 || a.ty.elem == ScalarType::Bool;
        let data: ExecResult<Vec<f64>> = a
            .data
            .iter()
            .zip(b.data.iter())
            .map(|(&x, &y)| apply_binop(op, x, y, int_ty))
            .collect();
        let data = data?;
        let out_ty = if op.is_comparison() {
            a.ty.with_lanes(a.ty.lanes).elem_to_bool()
        } else {
            a.ty
        };
        if a.ty.elem.is_float() && !op.is_comparison() {
            self.cuda_flops += a.lanes() as u64;
        }
        let data = if out_ty.elem.is_float() && !op.is_comparison() {
            data.into_iter().map(|v| round_to(out_ty.elem, v)).collect()
        } else {
            data
        };
        Ok(Value::new(out_ty, data))
    }
}

fn apply_binop(op: BinOp, x: f64, y: f64, int_ty: bool) -> ExecResult<f64> {
    let v = if int_ty {
        let (xi, yi) = (x as i64, y as i64);
        let r = match op {
            BinOp::Add => xi + yi,
            BinOp::Sub => xi - yi,
            BinOp::Mul => xi * yi,
            BinOp::Div => {
                if yi == 0 {
                    return Err(ExecError("integer division by zero".into()));
                }
                xi.div_euclid(yi)
            }
            BinOp::Mod => {
                if yi == 0 {
                    return Err(ExecError("integer modulo by zero".into()));
                }
                xi.rem_euclid(yi)
            }
            BinOp::Min => xi.min(yi),
            BinOp::Max => xi.max(yi),
            BinOp::Lt => i64::from(xi < yi),
            BinOp::Le => i64::from(xi <= yi),
            BinOp::Eq => i64::from(xi == yi),
            BinOp::And => i64::from(xi != 0 && yi != 0),
            BinOp::Or => i64::from(xi != 0 || yi != 0),
        };
        r as f64
    } else {
        match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
            BinOp::Mod => x.rem_euclid(y),
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
            BinOp::Lt => f64::from(x < y),
            BinOp::Le => f64::from(x <= y),
            BinOp::Eq => f64::from((x - y).abs() == 0.0),
            BinOp::And => f64::from(x != 0.0 && y != 0.0),
            BinOp::Or => f64::from(x != 0.0 || y != 0.0),
        }
    };
    Ok(v)
}

/// Extension trait used by the interpreter to form comparison result types.
trait TypeExt {
    fn elem_to_bool(self) -> hb_ir::types::Type;
}

impl TypeExt for hb_ir::types::Type {
    fn elem_to_bool(self) -> hb_ir::types::Type {
        hb_ir::types::Type::new(ScalarType::Bool, self.lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_ir::builder::*;
    use hb_ir::types::{MemoryType, Type};

    fn fresh_with(buffers: &[(&str, ScalarType, Vec<f64>)]) -> Interp {
        let mut it = Interp::new();
        for (name, elem, data) in buffers {
            it.mem
                .alloc_init(name, *elem, MemoryType::Heap, data)
                .unwrap();
        }
        it
    }

    #[test]
    fn scalar_arithmetic() {
        let mut it = Interp::new();
        let v = it.eval(&add(int(2), mul(int(3), int(4)))).unwrap();
        assert_eq!(v.as_i64(), 14);
        let v = it.eval(&modulo(int(-1), int(4))).unwrap();
        assert_eq!(v.as_i64(), 3, "euclidean mod");
    }

    #[test]
    fn ramp_and_broadcast_lanes() {
        let mut it = Interp::new();
        // ramp(ramp(0,1,3), x3(10), 2) = [0,1,2, 10,11,12]
        let e = ramp(ramp(int(0), int(1), 3), bcast(int(10), 3), 2);
        let v = it.eval(&e).unwrap();
        assert_eq!(v.to_indices(), vec![0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn vectorized_load_store() {
        let mut it = fresh_with(&[("a", ScalarType::F32, vec![1.0, 2.0, 3.0, 4.0])]);
        it.mem
            .alloc("out", ScalarType::F32, 4, MemoryType::Heap)
            .unwrap();
        // out[ramp(0,1,4)] = a[ramp(3,-1,4)]  (reverse copy)
        let s = store(
            "out",
            ramp(int(0), int(1), 4),
            load(Type::f32().with_lanes(4), "a", ramp(int(3), int(-1), 4)),
        );
        it.exec(&s).unwrap();
        assert_eq!(it.mem.snapshot("out").unwrap(), vec![4.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn vector_reduce_add_groups() {
        let mut it = fresh_with(&[("a", ScalarType::F32, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])]);
        let e = vreduce_add(
            2,
            load(Type::f32().with_lanes(6), "a", ramp(int(0), int(1), 6)),
        );
        let v = it.eval(&e).unwrap();
        assert_eq!(v.data, vec![6.0, 15.0]);
        assert_eq!(it.cuda_flops, 4, "6->2 lanes = 4 adds");
    }

    #[test]
    fn loops_accumulate() {
        let mut it = fresh_with(&[("a", ScalarType::F32, (0..10).map(f64::from).collect())]);
        it.mem
            .alloc("sum", ScalarType::F32, 1, MemoryType::Heap)
            .unwrap();
        // for i in 0..10 { sum[0] = sum[0] + a[i] }
        let body = store(
            "sum",
            int(0),
            add(
                load(Type::f32(), "sum", int(0)),
                load(Type::f32(), "a", var("i")),
            ),
        );
        it.exec(&for_serial("i", int(0), int(10), body)).unwrap();
        assert_eq!(it.mem.snapshot("sum").unwrap()[0], 45.0);
    }

    #[test]
    fn gpu_lane_loop_executes_once() {
        let mut it = Interp::new();
        it.mem
            .alloc("c", ScalarType::F32, 1, MemoryType::Heap)
            .unwrap();
        let body = store("c", int(0), add(load(Type::f32(), "c", int(0)), flt(1.0)));
        let warp = for_kind("lane", int(0), int(32), ForKind::GpuLane, body);
        it.exec(&warp).unwrap();
        assert_eq!(it.mem.snapshot("c").unwrap()[0], 1.0);
    }

    #[test]
    fn allocate_scopes_buffers() {
        let mut it = Interp::new();
        let inner = store("tmp", int(0), flt(5.0));
        let s = allocate("tmp", ScalarType::F32, 4, MemoryType::Stack, inner);
        it.exec(&s).unwrap();
        assert!(!it.mem.contains("tmp"), "freed at scope exit");
        // Re-entrant: allocate inside a loop works.
        let s2 = for_serial(
            "i",
            int(0),
            int(3),
            allocate(
                "tmp",
                ScalarType::F32,
                4,
                MemoryType::Stack,
                store("tmp", int(0), flt(1.0)),
            ),
        );
        it.exec(&s2).unwrap();
    }

    #[test]
    fn if_guards() {
        let mut it = Interp::new();
        it.mem
            .alloc("c", ScalarType::F32, 1, MemoryType::Heap)
            .unwrap();
        let s = for_serial(
            "i",
            int(0),
            int(10),
            Stmt::If {
                cond: lt(var("i"), int(3)),
                then_case: Box::new(store(
                    "c",
                    int(0),
                    add(load(Type::f32(), "c", int(0)), flt(1.0)),
                )),
            },
        );
        it.exec(&s).unwrap();
        assert_eq!(it.mem.snapshot("c").unwrap()[0], 3.0);
    }

    #[test]
    fn float_ops_counted_as_cuda_flops() {
        let mut it = Interp::new();
        let e = mul(bcast(flt(2.0), 8), bcast(flt(3.0), 8));
        let _ = it.eval(&e).unwrap();
        assert_eq!(it.cuda_flops, 8);
        // Integer index arithmetic is free.
        let e2 = mul(bcast(int(2), 8), bcast(int(3), 8));
        let _ = it.eval(&e2).unwrap();
        assert_eq!(it.cuda_flops, 8);
    }

    #[test]
    fn kernel_launch_counting() {
        let mut it = Interp::new();
        it.mem
            .alloc("c", ScalarType::F32, 1, MemoryType::Heap)
            .unwrap();
        it.run_kernel(&store("c", int(0), flt(1.0))).unwrap();
        it.run_kernel(&store("c", int(0), flt(2.0))).unwrap();
        assert_eq!(it.counters().kernel_launches, 2);
    }

    #[test]
    fn f16_loads_round() {
        let mut it = fresh_with(&[("h", ScalarType::F16, vec![1.0 + 2f64.powi(-13)])]);
        let v = it.eval(&load(Type::f16(), "h", int(0))).unwrap();
        assert_eq!(v.data[0], 1.0);
    }

    #[test]
    fn division_by_zero_errors() {
        let mut it = Interp::new();
        assert!(it.eval(&div(int(1), int(0))).is_err());
        assert!(it.eval(&modulo(int(1), int(0))).is_err());
    }

    #[test]
    fn select_vectorized() {
        let mut it = Interp::new();
        let e = select(
            lt(ramp(int(0), int(1), 4), bcast(int(2), 4)),
            bcast(flt(1.0), 4),
            bcast(flt(0.0), 4),
        );
        let v = it.eval(&e).unwrap();
        assert_eq!(v.data, vec![1.0, 1.0, 0.0, 0.0]);
    }
}
