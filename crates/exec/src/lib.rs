//! # hb-exec — IR interpreter over simulated memory and accelerators
//!
//! Executes lowered [`hb_ir`] programs functionally: vectorized loads/stores
//! against named [`buffer::Memory`] buffers (with bf16/f16 storage rounding),
//! loops and allocations, and the accelerator [`intrinsics`] HARDBOILED
//! emits, dispatched into the `hb-accel` AMX and WMMA units.
//!
//! Execution doubles as the measurement harness: every access and operation
//! is charged to [`hb_accel::counters::CostCounters`], which the roofline
//! model turns into the runtime estimates that regenerate the paper's
//! figures.
//!
//! ## Example
//!
//! ```
//! use hb_exec::interp::Interp;
//! use hb_ir::builder::*;
//! use hb_ir::types::{MemoryType, ScalarType, Type};
//!
//! # fn main() -> Result<(), hb_exec::buffer::ExecError> {
//! let mut it = Interp::new();
//! it.mem.alloc_init("a", ScalarType::F32, MemoryType::Heap, &[1.0, 2.0, 3.0, 4.0])?;
//! it.mem.alloc("out", ScalarType::F32, 4, MemoryType::Heap)?;
//! // out[i] = a[i] * 2, vectorized 4 wide:
//! let s = store(
//!     "out",
//!     ramp(int(0), int(1), 4),
//!     mul(load(Type::f32().with_lanes(4), "a", ramp(int(0), int(1), 4)), bcast(flt(2.0), 4)),
//! );
//! it.exec(&s)?;
//! assert_eq!(it.mem.snapshot("out")?, vec![2.0, 4.0, 6.0, 8.0]);
//! # Ok(())
//! # }
//! ```

pub mod buffer;
pub mod interp;
pub mod intrinsics;
pub mod value;

pub use buffer::{Buffer, ExecError, ExecResult, Memory};
pub use interp::Interp;
pub use value::Value;
