//! Byte-level primitives for the versioned e-graph snapshot format.
//!
//! A snapshot is the exact persisted state of a *clean* (rebuilt) e-graph:
//! union-find forest, classes with their node lists and analysis data,
//! operator index rows, `(class, op_key)` epoch rows, the class-level and
//! per-op modification logs, and the relation store with its change logs
//! — everything the op-keyed delta machinery needs so a restored graph
//! can **warm-start** saturation and run only the semi-naive delta for
//! whatever is added after the restore.
//!
//! ## Wire format
//!
//! Dependency-free little-endian framing (no serde):
//!
//! ```text
//! magic "HBEG" | format version u32 | payload length u64 |
//! payload checksum u64 | payload bytes
//! ```
//!
//! The payload is written through [`SnapshotWriter`] and read back through
//! [`SnapshotReader`]; both are dumb length-checked cursors — all
//! structural validation happens in `EGraph::restore`. The checksum is a
//! splitmix64 chain over the payload, so corrupted or truncated bytes are
//! rejected with a typed [`SnapshotError`] before any structural parsing
//! runs, and a version bump is rejected by exact match on the header —
//! never a panic, so callers can fall back to a cold compile.
//!
//! ## Operator-key indirection
//!
//! [`crate::language::Language::op_key`] values come from the standard
//! hasher, which is stable within one binary but **not across binaries**
//! (or compiler versions). Raw keys therefore never appear in a snapshot:
//! the payload carries a table of *representative e-nodes*, one per
//! distinct operator, and every keyed structure (op rows, per-op logs,
//! index rows) refers to operators by table index. `EGraph::restore`
//! re-derives the keys by calling `op_key()` on the representatives, so a
//! snapshot written by one build restores correctly under another build's
//! hash seeds.
//!
//! Node payloads and analysis data are language-specific, so languages
//! opt in by implementing [`SnapshotNode`] (and [`SnapshotAnalysis`] for
//! their analysis; the trivial `()` analysis is supported out of the box).

use std::fmt;

use crate::egraph::Analysis;
use crate::language::Language;
use crate::unionfind::Id;

/// Leading magic bytes of every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"HBEG";

/// Current snapshot format version. Bump on any wire-format change;
/// restore rejects every other version with
/// [`SnapshotError::UnsupportedVersion`].
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why snapshot bytes could not be restored. Every variant is a clean,
/// typed rejection — restoring never panics on bad input — so callers can
/// log the reason and fall back to a cold compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the structure it framed.
    Truncated,
    /// The leading magic bytes are not `HBEG`.
    BadMagic,
    /// The header names a format version this build cannot read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch,
    /// The frame decoded but the payload violates a structural invariant
    /// (dangling id, cyclic union-find, unsorted log, …).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot bytes are truncated"),
            SnapshotError::BadMagic => write!(f, "not an e-graph snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads {supported})"
            ),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot payload checksum mismatch"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot payload: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// splitmix64 — the same mixer the fault plan uses, duplicated here so the
/// checksum does not depend on the `fault-injection` feature.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Checksum of a payload: a splitmix64 chain over its little-endian
/// 8-byte words (zero-padded tail), seeded with the length so that
/// truncation to a word boundary still changes the sum.
#[must_use]
pub fn payload_checksum(bytes: &[u8]) -> u64 {
    let mut h = splitmix64(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = splitmix64(h ^ u64::from_le_bytes(word));
    }
    h
}

/// Append-only little-endian byte sink for snapshot payloads.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64` (two's complement), little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length or count as `u64`.
    pub fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an e-class id.
    pub fn id(&mut self, id: Id) {
        self.u32(id.0);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Length-checked little-endian cursor over snapshot payload bytes.
/// Every read returns [`SnapshotError::Truncated`] instead of slicing out
/// of bounds.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// A cursor at the start of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        SnapshotReader { bytes, pos: 0 }
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a length or count written by [`SnapshotWriter::len`], bounded
    /// by the bytes remaining so a corrupt length cannot trigger a huge
    /// allocation before the next read fails.
    #[allow(clippy::len_without_is_empty)] // a read, not a container query
    pub fn len(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        let v = usize::try_from(v).map_err(|_| SnapshotError::Truncated)?;
        // Any structure of `v` elements needs at least one byte each; a
        // length exceeding the tail is corruption or truncation.
        if v > self.bytes.len() - self.pos {
            return Err(SnapshotError::Truncated);
        }
        Ok(v)
    }

    /// Reads an e-class id.
    pub fn id(&mut self) -> Result<Id, SnapshotError> {
        Ok(Id(self.u32()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("invalid UTF-8 string".into()))
    }
}

/// A [`Language`] whose e-nodes can be written to and read from snapshot
/// payloads. Implementations must round-trip exactly:
/// `read_node(write_node(n)) == n` for every node.
pub trait SnapshotNode: Language {
    /// Serializes one e-node (tag + payload + child ids).
    fn write_node(&self, w: &mut SnapshotWriter);

    /// Deserializes one e-node. Child ids are restored verbatim; the
    /// caller validates them against the restored union-find.
    fn read_node(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError>;
}

/// An [`Analysis`] whose per-class data can be written to and read from
/// snapshot payloads. Must round-trip exactly (`PartialEq`-equal), since
/// analysis data feeds rule guards and must not drift across a
/// snapshot/restore cycle.
pub trait SnapshotAnalysis<L: Language>: Analysis<L> {
    /// Serializes one class's analysis data.
    fn write_data(data: &Self::Data, w: &mut SnapshotWriter);

    /// Deserializes one class's analysis data.
    fn read_data(r: &mut SnapshotReader<'_>) -> Result<Self::Data, SnapshotError>;
}

/// The trivial analysis stores nothing.
impl<L: Language> SnapshotAnalysis<L> for () {
    fn write_data((): &Self::Data, _w: &mut SnapshotWriter) {}

    fn read_data(_r: &mut SnapshotReader<'_>) -> Result<Self::Data, SnapshotError> {
        Ok(())
    }
}

/// Frames a payload with magic, version, length and checksum.
#[must_use]
pub fn frame_payload(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload_checksum(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Validates the frame and returns the payload slice: checks magic,
/// version, length and checksum in that order so each failure mode maps
/// to its own [`SnapshotError`] variant.
pub fn unframe_payload(bytes: &[u8]) -> Result<&[u8], SnapshotError> {
    if bytes.len() < 4 {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < 24 {
        return Err(SnapshotError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let payload_len = usize::try_from(payload_len).map_err(|_| SnapshotError::Truncated)?;
    let expected_sum = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let payload = &bytes[24..];
    if payload.len() != payload_len {
        return Err(SnapshotError::Truncated);
    }
    if payload_checksum(payload) != expected_sum {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = SnapshotWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.len(3);
        w.id(Id(9));
        w.str("amx-B-tile");
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.len().unwrap(), 3);
        assert_eq!(r.id().unwrap(), Id(9));
        assert_eq!(r.str().unwrap(), "amx-B-tile");
        assert!(r.is_exhausted());
    }

    #[test]
    fn reader_rejects_overruns() {
        let bytes = [1u8, 2, 3];
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.u64(), Err(SnapshotError::Truncated));
        // A huge length prefix is caught before any allocation.
        let mut w = SnapshotWriter::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.len(), Err(SnapshotError::Truncated));
    }

    #[test]
    fn frame_roundtrip_and_rejections() {
        let payload = b"payload bytes".to_vec();
        let framed = frame_payload(payload.clone());
        assert_eq!(unframe_payload(&framed).unwrap(), payload.as_slice());

        // Bad magic.
        let mut bad = framed.clone();
        bad[0] = b'X';
        assert_eq!(unframe_payload(&bad), Err(SnapshotError::BadMagic));

        // Version bump.
        let mut bumped = framed.clone();
        bumped[4..8].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        assert_eq!(
            unframe_payload(&bumped),
            Err(SnapshotError::UnsupportedVersion {
                found: SNAPSHOT_VERSION + 1,
                supported: SNAPSHOT_VERSION,
            })
        );

        // Truncation at every prefix length is a typed error, never a panic.
        for cut in 0..framed.len() {
            assert!(unframe_payload(&framed[..cut]).is_err(), "cut at {cut}");
        }

        // Any single flipped payload byte trips the checksum.
        for i in 24..framed.len() {
            let mut flipped = framed.clone();
            flipped[i] ^= 0x40;
            assert_eq!(
                unframe_payload(&flipped),
                Err(SnapshotError::ChecksumMismatch),
                "flip at {i}"
            );
        }
    }

    #[test]
    fn checksum_is_length_sensitive() {
        // Zero-padding the tail must not collide with explicit zeros.
        assert_ne!(payload_checksum(b"abc"), payload_checksum(b"abc\0"));
        assert_ne!(payload_checksum(b""), payload_checksum(b"\0"));
    }
}
