//! Union-find over e-class ids with path compression.

use std::fmt;

/// Identifier of an e-class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Id(pub u32);

impl Id {
    /// The id as a usize index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<usize> for Id {
    fn from(v: usize) -> Self {
        Id(u32::try_from(v).expect("e-class id overflow"))
    }
}

/// Disjoint-set forest with path compression (union by arbitrary winner —
/// the e-graph chooses which root survives so it can keep class data).
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parents: Vec<Id>,
}

impl UnionFind {
    /// Creates an empty forest.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fresh singleton set and returns its id.
    pub fn make_set(&mut self) -> Id {
        let id = Id::from(self.parents.len());
        self.parents.push(id);
        id
    }

    /// Number of ids ever created (not the number of sets).
    #[must_use]
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// Whether no ids have been created.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Finds the canonical representative without mutating.
    #[must_use]
    pub fn find(&self, mut id: Id) -> Id {
        while self.parents[id.index()] != id {
            id = self.parents[id.index()];
        }
        id
    }

    /// Finds the canonical representative, compressing paths.
    ///
    /// Uses single-pass path halving (every node on the walk is pointed at
    /// its grandparent), which touches each cache line once — measurably
    /// cheaper than two-pass compression on the e-graph's add/rebuild hot
    /// paths while giving the same amortized complexity.
    pub fn find_mut(&mut self, mut id: Id) -> Id {
        while self.parents[id.index()] != id {
            let parent = self.parents[id.index()];
            let grand = self.parents[parent.index()];
            self.parents[id.index()] = grand;
            id = grand;
        }
        id
    }

    /// Merges the set containing `loser` into the set containing `winner`.
    /// Both must already be canonical. Returns the surviving root.
    pub fn union_roots(&mut self, winner: Id, loser: Id) -> Id {
        debug_assert_eq!(self.parents[winner.index()], winner, "winner not canonical");
        debug_assert_eq!(self.parents[loser.index()], loser, "loser not canonical");
        self.parents[loser.index()] = winner;
        winner
    }

    /// Whether the two ids are in the same set.
    #[must_use]
    pub fn same(&self, a: Id, b: Id) -> bool {
        self.find(a) == self.find(b)
    }

    /// The raw parent array, for snapshot serialization.
    pub(crate) fn parents(&self) -> &[Id] {
        &self.parents
    }

    /// Rebuilds a forest from a snapshot's parent array. The caller
    /// (`EGraph::restore`) has already validated bounds and acyclicity.
    pub(crate) fn from_parents(parents: Vec<Id>) -> Self {
        UnionFind { parents }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_their_own_roots() {
        let mut uf = UnionFind::new();
        let a = uf.make_set();
        let b = uf.make_set();
        assert_ne!(a, b);
        assert_eq!(uf.find(a), a);
        assert_eq!(uf.find(b), b);
        assert!(!uf.same(a, b));
        assert_eq!(uf.len(), 2);
    }

    #[test]
    fn union_merges_and_compresses() {
        let mut uf = UnionFind::new();
        let ids: Vec<Id> = (0..10).map(|_| uf.make_set()).collect();
        // Chain unions: 0 <- 1 <- 2 ... keeping 0 as the winner each time.
        for w in ids.windows(2) {
            let winner = uf.find_mut(w[0]);
            let loser = uf.find_mut(w[1]);
            if winner != loser {
                uf.union_roots(winner, loser);
            }
        }
        for &id in &ids {
            assert_eq!(uf.find(id), ids[0]);
        }
        // Path compression: after find_mut every parent points at the root.
        let last = ids[9];
        uf.find_mut(last);
        assert_eq!(uf.parents[last.index()], ids[0]);
    }

    #[test]
    fn same_is_reflexive_and_transitive() {
        let mut uf = UnionFind::new();
        let a = uf.make_set();
        let b = uf.make_set();
        let c = uf.make_set();
        uf.union_roots(a, b);
        uf.union_roots(a, c);
        assert!(uf.same(b, c));
        assert!(uf.same(a, a));
    }

    #[test]
    fn display_and_from() {
        let id = Id::from(3usize);
        assert_eq!(id.to_string(), "e3");
        assert_eq!(id.index(), 3);
    }
}
