//! The e-graph: hash-consed e-nodes grouped into equivalence classes,
//! with congruence maintained by explicit rebuilding (the egg algorithm).
//!
//! Performance machinery on top of the basic algorithm (see the crate docs
//! for the design):
//!
//! * an **operator index** (`op_key` → candidate classes) kept current
//!   through [`EGraph::add`] / [`EGraph::union`] / [`EGraph::rebuild`], so
//!   indexed e-matching visits only classes that can possibly match;
//! * **incremental rebuilding**: only classes dirtied by unions since the
//!   last rebuild have their node lists re-canonicalized;
//! * **op-keyed modification epochs**: every `(class, op_key)` row carries
//!   the epoch of the last change that could affect matches rooted at that
//!   class *through a node with that operator*. Changes propagate to
//!   transitive parents on rebuild, but each ancestor is stamped only in
//!   the rows of the parent-node operators the change actually flows
//!   through — so a union near a widely shared leaf does not mark every
//!   op row of every ancestor. Per-op append-only delta logs (compacted
//!   deterministically on rebuild) make "classes whose `k` rows changed
//!   since epoch `e`" an O(changes-to-`k`) query
//!   ([`EGraph::modified_candidates_for`]). A class-level epoch (the max
//!   over its rows) and a global log are kept alongside: they serve
//!   variable-rooted patterns, the scheduler's quiescence check, and the
//!   retained per-class read path
//!   ([`EGraph::modified_candidates_per_class`], the
//!   [`DeltaTracking::PerClass`] A/B baseline).

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Debug;

use crate::language::{Language, RecExpr};
use crate::relation::Relations;
use crate::snapshot::{
    frame_payload, unframe_payload, SnapshotAnalysis, SnapshotError, SnapshotNode, SnapshotReader,
    SnapshotWriter,
};
use crate::unionfind::{Id, UnionFind};

/// Which change-tracking granularity a delta search reads.
///
/// Both granularities are maintained by every graph; this only selects the
/// read path. [`DeltaTracking::OpKeyed`] probes the per-`(class, op_key)`
/// rows — a pattern rooted at operator `k` re-probes only classes whose
/// `k` rows changed. [`DeltaTracking::PerClass`] is the pre-op-keying
/// behavior (any change to a class re-probes it for every root operator it
/// contains), retained as the A/B baseline the same way the naive matcher
/// is retained (`Runner::use_per_class_deltas`). Match sets are identical;
/// only the number of probed rows differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaTracking {
    /// Probe per-`(class, op_key)` rows (the default).
    #[default]
    OpKeyed,
    /// Probe per-class epochs intersected with the operator index — the
    /// pre-op-keying baseline.
    PerClass,
}

/// An e-class analysis: a lattice value maintained per e-class
/// (constants, types, …). See egg's `Analysis`.
pub trait Analysis<L: Language>: Sized {
    /// Per-class data.
    type Data: Clone + PartialEq + Debug;

    /// Computes the data for a single e-node whose children are canonical.
    fn make(egraph: &EGraph<L, Self>, enode: &L) -> Self::Data;

    /// Merges `b` into `a` when two classes are unified; returns whether `a`
    /// changed (triggering re-propagation to parents).
    fn merge(a: &mut Self::Data, b: Self::Data) -> bool;
}

/// The trivial analysis.
impl<L: Language> Analysis<L> for () {
    type Data = ();
    fn make(_: &EGraph<L, Self>, _: &L) -> Self::Data {}
    fn merge(_: &mut Self::Data, _: Self::Data) -> bool {
        false
    }
}

/// An equivalence class of e-nodes.
#[derive(Debug, Clone)]
pub struct EClass<L, D> {
    /// Canonical id of this class.
    pub id: Id,
    /// E-nodes in the class (children canonical as of the last rebuild).
    pub nodes: Vec<L>,
    /// Analysis data.
    pub data: D,
    /// Parent e-nodes (and the class they live in), possibly stale.
    parents: Vec<(L, Id)>,
    /// Epoch of the last change that could affect matches rooted here
    /// (directly or in a descendant — propagated on rebuild). The max over
    /// `op_epochs` rows.
    modified: u64,
    /// Per-operator modification rows: `(op_key, epoch)` where `epoch` is
    /// the last change that could affect matches rooted here *through a
    /// node with that operator*. Keys are exactly the distinct op keys of
    /// `nodes`; classes hold a handful of operators, so a linear scan
    /// beats hashing.
    op_epochs: Vec<(u64, u64)>,
}

impl<L, D> EClass<L, D> {
    /// Epoch of the last modification affecting matches rooted at this
    /// class. Valid after a rebuild; see [`EGraph::work_epoch`].
    #[must_use]
    pub fn modified_epoch(&self) -> u64 {
        self.modified
    }

    /// Epoch of the last modification affecting matches rooted at this
    /// class through a node with the given [`Language::op_key`], or `None`
    /// if the class holds no such node. Valid after a rebuild.
    #[must_use]
    pub fn op_modified_epoch(&self, key: u64) -> Option<u64> {
        self.op_epochs
            .iter()
            .find_map(|&(k, e)| (k == key).then_some(e))
    }

    /// Advances the `(class, key)` row to `epoch`; returns whether the row
    /// moved (callers log the change only then, keeping the per-op delta
    /// logs duplicate-light).
    fn bump_op_epoch(&mut self, key: u64, epoch: u64) -> bool {
        match self.op_epochs.iter_mut().find(|(k, _)| *k == key) {
            Some((_, e)) => {
                if *e < epoch {
                    *e = epoch;
                    true
                } else {
                    false
                }
            }
            None => {
                self.op_epochs.push((key, epoch));
                true
            }
        }
    }

    /// Ids of classes containing a parent e-node of this class (possibly
    /// stale — canonicalize with [`EGraph::find`] before use).
    pub fn parent_classes(&self) -> impl Iterator<Item = Id> + '_ {
        self.parents.iter().map(|(_, id)| *id)
    }
}

/// The e-graph.
#[derive(Debug, Clone)]
pub struct EGraph<L: Language, N: Analysis<L> = ()> {
    unionfind: UnionFind,
    memo: HashMap<L, Id>,
    classes: HashMap<Id, EClass<L, N::Data>>,
    pending: Vec<(L, Id)>,
    analysis_pending: Vec<(L, Id)>,
    /// Datalog-style relations over e-class ids (egglog's `relation`s).
    pub relations: Relations,
    clean: bool,
    /// Operator index: `op_key` → classes containing a node with that key.
    /// Entries may be stale (non-canonical) or duplicated between rebuilds;
    /// readers canonicalize and dedup ([`EGraph::candidates_for`]).
    classes_by_op: HashMap<u64, Vec<Id>>,
    /// Op keys whose index rows need compaction on the next rebuild.
    dirty_ops: HashSet<u64>,
    /// Classes whose node lists need re-canonicalization on the next
    /// rebuild (union winners and classes containing parents of losers).
    dirty_classes: Vec<Id>,
    /// Classes stamped since the last rebuild, awaiting upward epoch
    /// propagation.
    touched: Vec<Id>,
    /// Append-only log of `(epoch, class)` modification events, epochs
    /// nondecreasing — the class-granular delta read path
    /// ([`EGraph::modified_since`], variable-rooted patterns, the
    /// quiescence check). Compacted on rebuild once it outgrows the class
    /// table.
    modified_log: Vec<(u64, Id)>,
    /// Per-operator append-only logs of `(epoch, class)` row-modification
    /// events, epochs nondecreasing within each log — the op-keyed delta
    /// read path ([`EGraph::modified_candidates_for`]). A class appears in
    /// log `k` when its `(class, k)` row was stamped: a `k`-node was added,
    /// a union merged `k`-nodes into it, or a change propagated up through
    /// a parent node with op `k`. Compacted deterministically on rebuild
    /// once a log outgrows its index row.
    modified_log_by_op: HashMap<u64, Vec<(u64, Id)>>,
    /// Monotone modification clock; see [`EGraph::bump_epoch`].
    work_epoch: u64,
    /// Whether any union happened since the last rebuild (gates relation
    /// canonicalization).
    unioned_since_rebuild: bool,
}

impl<L: Language, N: Analysis<L>> Default for EGraph<L, N> {
    fn default() -> Self {
        EGraph {
            unionfind: UnionFind::new(),
            memo: HashMap::new(),
            classes: HashMap::new(),
            pending: Vec::new(),
            analysis_pending: Vec::new(),
            relations: Relations::default(),
            clean: true,
            classes_by_op: HashMap::new(),
            dirty_ops: HashSet::new(),
            dirty_classes: Vec::new(),
            touched: Vec::new(),
            modified_log: Vec::new(),
            modified_log_by_op: HashMap::new(),
            work_epoch: 1,
            unioned_since_rebuild: false,
        }
    }
}

impl<L: Language, N: Analysis<L>> EGraph<L, N> {
    /// Creates an empty e-graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Canonical id for `id`.
    #[must_use]
    pub fn find(&self, id: Id) -> Id {
        self.unionfind.find(id)
    }

    /// Number of e-classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Total number of e-nodes across classes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.classes.values().map(|c| c.nodes.len()).sum()
    }

    /// Whether the graph has no classes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Iterates over all e-classes.
    pub fn classes(&self) -> impl Iterator<Item = &EClass<L, N::Data>> {
        self.classes.values()
    }

    /// The class with canonical id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    #[must_use]
    pub fn class(&self, id: Id) -> &EClass<L, N::Data> {
        let id = self.find(id);
        self.classes.get(&id).expect("unknown e-class id")
    }

    /// Analysis data of a class.
    #[must_use]
    pub fn data(&self, id: Id) -> &N::Data {
        &self.class(id).data
    }

    /// The current modification epoch. Classes created or modified from now
    /// on carry an epoch `>=` this value.
    #[must_use]
    pub fn work_epoch(&self) -> u64 {
        self.work_epoch
    }

    /// Advances the modification clock and returns the new epoch. A caller
    /// that records the returned value `e` and later asks for classes with
    /// `modified_epoch() >= e` sees exactly the classes (transitively)
    /// modified after the bump.
    pub fn bump_epoch(&mut self) -> u64 {
        self.work_epoch += 1;
        self.work_epoch
    }

    /// Canonical ids of classes that contain at least one e-node whose
    /// [`Language::op_key`] equals `key` — the operator index read path.
    /// Sorted and deduplicated.
    ///
    /// Zero-cost borrow: on a rebuilt graph every index row is already
    /// canonical (fresh `add`s append strictly increasing fresh ids; rows
    /// touched by unions are compacted during rebuild), so no per-query
    /// canonicalization is needed. Only valid on a clean graph, like every
    /// search entry point.
    #[must_use]
    pub fn candidates_for(&self, key: u64) -> &[Id] {
        debug_assert!(self.clean, "candidates_for requires a rebuilt e-graph");
        self.classes_by_op
            .get(&key)
            .map(Vec::as_slice)
            .unwrap_or_default()
    }

    /// Stamps `id` (which must be canonical) as modified now: the class
    /// epoch, and every one of its op rows. Called at union sites (the
    /// merged class's matches can change through any of its nodes —
    /// including cross-matcher root-id changes for ops that only one side
    /// contributed; `union` merges the loser's row keys into the winner
    /// first, so the rows cover the merged node list) and on analysis-data
    /// changes (guards may read the data under any root operator). Walks
    /// the existing rows, not the node list — O(distinct ops), no
    /// allocation.
    fn stamp(&mut self, id: Id) {
        let epoch = self.work_epoch;
        let Some(class) = self.classes.get_mut(&id) else {
            return;
        };
        class.modified = epoch;
        for &mut (key, ref mut row) in &mut class.op_epochs {
            if *row < epoch {
                *row = epoch;
                self.modified_log_by_op
                    .entry(key)
                    .or_default()
                    .push((epoch, id));
            }
        }
        self.touched.push(id);
        self.modified_log.push((epoch, id));
    }

    /// Canonical ids of classes (transitively) modified at or after
    /// `cutoff`, via the modification log — O(changes), not O(classes), so
    /// a delta probe over a saturated graph is free. May contain classes
    /// whose last modification is slightly older than `cutoff` (log entries
    /// are stamped at append time); such false positives only cost the
    /// matcher a probe.
    #[must_use]
    pub fn modified_since(&self, cutoff: u64) -> Vec<Id> {
        let start = self.modified_log.partition_point(|&(e, _)| e < cutoff);
        if start == self.modified_log.len() {
            return Vec::new();
        }
        let mut out: Vec<Id> = self.modified_log[start..]
            .iter()
            .map(|&(_, id)| self.find(id))
            .collect();
        out.sort_unstable();
        out.dedup();
        // No liveness filter needed: `find` maps every logged id to a
        // canonical root, and every root has a live class entry.
        out
    }

    /// Whether any class was (transitively) modified at or after `cutoff`.
    /// O(log changes) — the scheduler's cheap quiescence check.
    #[must_use]
    pub fn any_modified_since(&self, cutoff: u64) -> bool {
        self.modified_log.partition_point(|&(e, _)| e < cutoff) < self.modified_log.len()
    }

    /// Canonical ids of classes whose `(class, key)` rows were stamped at
    /// or after `cutoff` — the **op-keyed** delta-probe enumeration for a
    /// pattern rooted at that operator. Reads the per-op log tail, so the
    /// cost is O(changes to `key` rows), zero when that operator was
    /// untouched — a union in a region with no `key` activity no longer
    /// widens this probe. Sorted and deduplicated; may over-approximate
    /// like [`EGraph::modified_since`] (false positives cost the matcher a
    /// probe).
    #[must_use]
    pub fn modified_candidates_for(&self, key: u64, cutoff: u64) -> Vec<Id> {
        let Some(log) = self.modified_log_by_op.get(&key) else {
            return Vec::new();
        };
        let start = log.partition_point(|&(e, _)| e < cutoff);
        if start == log.len() {
            return Vec::new();
        }
        let mut out: Vec<Id> = log[start..].iter().map(|&(_, id)| self.find(id)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// [`EGraph::modified_since`] restricted to classes that contain a node
    /// with the given [`Language::op_key`] — the retained **per-class**
    /// delta-probe enumeration ([`DeltaTracking::PerClass`]): any change to
    /// a class re-surfaces it for every root operator it contains.
    /// Sorted-merge intersection of the global log tail with the operator
    /// index row; empty tail short-circuits to zero work. Always a
    /// superset of [`EGraph::modified_candidates_for`] at the same cutoff.
    #[must_use]
    pub fn modified_candidates_per_class(&self, key: u64, cutoff: u64) -> Vec<Id> {
        let tail = self.modified_since(cutoff);
        if tail.is_empty() {
            return tail;
        }
        let row: &[Id] = self.candidates_for(key);
        let mut out = Vec::with_capacity(tail.len().min(row.len()));
        let (mut i, mut j) = (0, 0);
        while i < tail.len() && j < row.len() {
            match tail[i].cmp(&row[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(tail[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    fn canonicalize(&self, node: &L) -> L {
        node.map_children(|c| self.find(c))
    }

    /// Canonicalization with path compression (for `&mut self` hot paths).
    fn canonicalize_mut(&mut self, node: &L) -> L {
        let uf = &mut self.unionfind;
        node.map_children(|c| uf.find_mut(c))
    }

    /// Looks up an e-node (children need not be canonical) without inserting.
    #[must_use]
    pub fn lookup(&self, node: &L) -> Option<Id> {
        let canon = self.canonicalize(node);
        self.memo.get(&canon).map(|&id| self.find(id))
    }

    /// Adds an e-node, returning the id of its class (hash-consed).
    pub fn add(&mut self, node: L) -> Id {
        let canon = self.canonicalize_mut(&node);
        if let Some(&existing) = self.memo.get(&canon) {
            return self.find(existing);
        }
        let id = self.unionfind.make_set();
        let data = N::make(self, &canon);
        for &child in canon.children() {
            let child = self.find(child);
            self.classes
                .get_mut(&child)
                .expect("child class must exist")
                .parents
                .push((canon.clone(), id));
        }
        let key = canon.op_key();
        self.classes.insert(
            id,
            EClass {
                id,
                nodes: vec![canon.clone()],
                data,
                parents: Vec::new(),
                modified: self.work_epoch,
                op_epochs: vec![(key, self.work_epoch)],
            },
        );
        self.classes_by_op.entry(key).or_default().push(id);
        self.modified_log.push((self.work_epoch, id));
        self.modified_log_by_op
            .entry(key)
            .or_default()
            .push((self.work_epoch, id));
        self.memo.insert(canon, id);
        id
    }

    /// Adds a whole term bottom-up; returns the id of the root's class.
    pub fn add_recexpr(&mut self, expr: &RecExpr<L>) -> Id {
        let mut ids: Vec<Id> = Vec::with_capacity(expr.len());
        for node in expr.nodes() {
            let remapped = node.map_children(|c| ids[c.index()]);
            ids.push(self.add(remapped));
        }
        *ids.last().expect("cannot add an empty RecExpr")
    }

    /// Unions two classes; returns the surviving canonical id and whether
    /// anything changed. Requires a [`EGraph::rebuild`] before the next
    /// search (tracked by an internal dirty flag).
    pub fn union(&mut self, a: Id, b: Id) -> (Id, bool) {
        let a = self.unionfind.find_mut(a);
        let b = self.unionfind.find_mut(b);
        if a == b {
            return (a, false);
        }
        self.clean = false;
        self.unioned_since_rebuild = true;
        // Keep the class with more parents as the winner to move less data.
        let (winner, loser) = {
            let pa = self.classes[&a].parents.len();
            let pb = self.classes[&b].parents.len();
            if pa >= pb {
                (a, b)
            } else {
                (b, a)
            }
        };
        self.unionfind.union_roots(winner, loser);
        let loser_class = self.classes.remove(&loser).expect("loser class exists");
        // Loser's parents must be re-canonicalized and re-hashed, and the
        // classes holding those parent nodes re-canonicalized.
        self.pending.extend(loser_class.parents.iter().cloned());
        for &(_, parent_class) in &loser_class.parents {
            self.dirty_classes.push(parent_class);
        }
        // The loser's index rows now resolve to the winner; compact them on
        // the next rebuild.
        for node in &loser_class.nodes {
            self.dirty_ops.insert(node.op_key());
        }
        self.dirty_classes.push(winner);
        let winner_class = self.classes.get_mut(&winner).expect("winner class exists");
        winner_class.nodes.extend(loser_class.nodes);
        // Carry the loser's op rows over so the winner's row keys keep
        // covering its (now merged) node list; the stamp below then lifts
        // every row to the current epoch.
        for &(key, epoch) in &loser_class.op_epochs {
            winner_class.bump_op_epoch(key, epoch);
        }
        winner_class.parents.extend(loser_class.parents);
        let data_changed = N::merge(&mut winner_class.data, loser_class.data);
        if data_changed {
            self.analysis_pending
                .extend(self.classes[&winner].parents.iter().cloned());
        }
        self.stamp(winner);
        (winner, true)
    }

    /// Restores the congruence invariant and canonicalizes memo entries,
    /// class node lists and relation tuples. Must be called after a batch of
    /// unions before the next search.
    ///
    /// Incremental: only classes dirtied since the last rebuild (union
    /// winners, classes holding parents of union losers) have their node
    /// lists re-canonicalized; only index rows for operators touched by
    /// unions are compacted; relation tuples are only re-canonicalized when
    /// a union actually happened. A saturated rebuild is near-free.
    pub fn rebuild(&mut self) {
        while !self.pending.is_empty() || !self.analysis_pending.is_empty() {
            while let Some((node, cls)) = self.pending.pop() {
                let cls = self.unionfind.find_mut(cls);
                self.memo.remove(&node);
                let canon = self.canonicalize_mut(&node);
                if let Some(&other) = self.memo.get(&canon) {
                    let other = self.find(other);
                    if other != cls {
                        self.union(other, cls);
                    }
                } else {
                    self.memo.insert(canon, cls);
                }
            }
            while let Some((node, cls)) = self.analysis_pending.pop() {
                let cls = self.unionfind.find_mut(cls);
                let canon = self.canonicalize(&node);
                let new_data = N::make(self, &canon);
                let class = self.classes.get_mut(&cls).expect("class exists");
                if N::merge(&mut class.data, new_data) {
                    self.analysis_pending
                        .extend(self.classes[&cls].parents.iter().cloned());
                    self.stamp(cls);
                }
            }
        }
        // Canonicalize node lists and dedup — only where unions could have
        // left stale children or congruent duplicates.
        let mut dirty: Vec<Id> = std::mem::take(&mut self.dirty_classes)
            .into_iter()
            .map(|id| self.unionfind.find_mut(id))
            .collect();
        dirty.sort_unstable();
        dirty.dedup();
        for id in dirty {
            let Some(mut class) = self.classes.remove(&id) else {
                continue; // merged away by a congruence union above
            };
            for n in &mut class.nodes {
                *n = n.map_children(|c| self.unionfind.find_mut(c));
            }
            class.nodes.sort();
            class.nodes.dedup();
            self.classes.insert(id, class);
        }
        // Compact index rows touched by unions.
        for key in std::mem::take(&mut self.dirty_ops) {
            if let Some(row) = self.classes_by_op.get_mut(&key) {
                for id in row.iter_mut() {
                    *id = self.unionfind.find_mut(*id);
                }
                row.sort_unstable();
                row.dedup();
            }
        }
        if self.unioned_since_rebuild {
            let uf = &self.unionfind;
            self.relations.canonicalize(|id| uf.find(id));
            self.unioned_since_rebuild = false;
        }
        self.propagate_epochs();
        self.compact_modified_log();
        self.clean = true;
    }

    /// Bounds the modification logs: keep one entry per live class (per
    /// op row, for the per-op logs) at its maximum logged epoch. Exact
    /// (not lossy) for every future cutoff, and **deterministic**: the
    /// intermediate max-epoch map is a `HashMap`, so the compacted log is
    /// fully ordered by `(epoch, id)` before it replaces the old one —
    /// epochs are unique per id, so hash-iteration order can never leak
    /// into the log (and thence into delta probe order). Pinned by
    /// `compaction_is_deterministic_and_exact` in `tests/engine.rs`.
    fn compact_modified_log(&mut self) {
        if self.modified_log.len() > 1024.max(4 * self.classes.len()) {
            let mut max_epoch: HashMap<Id, u64> = HashMap::new();
            for &(e, id) in &self.modified_log {
                let id = self.unionfind.find(id);
                if self.classes.contains_key(&id) {
                    let slot = max_epoch.entry(id).or_insert(e);
                    *slot = (*slot).max(e);
                }
            }
            self.modified_log = Self::sorted_log(max_epoch);
        }
        for (key, log) in &mut self.modified_log_by_op {
            let row_len = self.classes_by_op.get(key).map_or(0, Vec::len);
            if log.len() <= 64.max(4 * row_len) {
                continue;
            }
            let mut max_epoch: HashMap<Id, u64> = HashMap::new();
            for &(e, id) in log.iter() {
                // No liveness filter needed: `find` maps every logged id
                // to a live root, and node lists only ever grow, so the
                // root still holds a node with this op key.
                let id = self.unionfind.find(id);
                let slot = max_epoch.entry(id).or_insert(e);
                *slot = (*slot).max(e);
            }
            *log = Self::sorted_log(max_epoch);
        }
    }

    /// A compacted log in its canonical order: strictly sorted by
    /// `(epoch, id)` (ids are unique keys, so this is a total order
    /// independent of the map's hash-iteration order).
    fn sorted_log(max_epoch: HashMap<Id, u64>) -> Vec<(u64, Id)> {
        let mut log: Vec<(u64, Id)> = max_epoch.into_iter().map(|(id, e)| (e, id)).collect();
        log.sort_unstable();
        log
    }

    /// Pushes modification epochs to transitive parents so that delta
    /// searches see every class whose match results could have changed.
    ///
    /// Op-keyed: a change in class `c` flows to a parent class only
    /// through the actual parent e-nodes, so each parent is stamped in the
    /// rows of those nodes' operators — `(parent, Mul)` stays untouched
    /// when the change arrived under the parent's `Div` node. The
    /// class-level epoch (max over rows) drives the worklist: a parent is
    /// re-traversed only when its max advanced, which is exactly when its
    /// own parents' rows (keyed by *their* parent-node ops, independent of
    /// which row advanced here) could still be behind. Row stamps are
    /// gated per row, not on the class max: a second path into an
    /// already-traversed parent through a different-op parent node must
    /// still stamp that op's row.
    fn propagate_epochs(&mut self) {
        let mut worklist: Vec<Id> = std::mem::take(&mut self.touched)
            .into_iter()
            .map(|id| self.unionfind.find_mut(id))
            .collect();
        worklist.sort_unstable();
        worklist.dedup();
        let mut parent_rows: Vec<(Id, u64)> = Vec::new();
        while let Some(id) = worklist.pop() {
            let Some(class) = self.classes.get(&id) else {
                continue;
            };
            let epoch = class.modified;
            parent_rows.clear();
            parent_rows.extend(
                class
                    .parents
                    .iter()
                    .map(|(node, pid)| (*pid, node.op_key())),
            );
            parent_rows.sort_unstable();
            parent_rows.dedup();
            for &(pid, key) in &parent_rows {
                let pid = self.unionfind.find_mut(pid);
                if let Some(parent) = self.classes.get_mut(&pid) {
                    if parent.bump_op_epoch(key, epoch) {
                        // Logged at the clock's current value to keep the
                        // log sorted; any cutoff ≤ `epoch` still sees it.
                        self.modified_log_by_op
                            .entry(key)
                            .or_default()
                            .push((self.work_epoch, pid));
                    }
                    if parent.modified < epoch {
                        parent.modified = epoch;
                        self.modified_log.push((self.work_epoch, pid));
                        worklist.push(pid);
                    }
                }
            }
        }
    }

    /// Whether the graph is rebuilt (safe to search).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.clean
    }

    /// Asserts that the operator index is exactly consistent with a
    /// from-scratch recomputation: for every op key, the canonicalized
    /// index row equals the set of classes containing a node with that key.
    ///
    /// Testing/debugging aid (used by the engine's property tests).
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic if the index and the recomputation differ.
    pub fn check_op_index(&self) {
        assert!(self.is_clean(), "check_op_index requires a rebuilt e-graph");
        let mut expected: HashMap<u64, Vec<Id>> = HashMap::new();
        for class in self.classes.values() {
            for node in &class.nodes {
                expected.entry(node.op_key()).or_default().push(class.id);
            }
        }
        for row in expected.values_mut() {
            row.sort_unstable();
            row.dedup();
        }
        for (key, want) in &expected {
            let got = self.candidates_for(*key);
            assert_eq!(
                got,
                want.as_slice(),
                "op index row for key {key:#x} diverged from recomputation"
            );
        }
        // No phantom rows — and every stored row must itself be canonical,
        // sorted and deduplicated (candidates_for borrows rows as-is).
        for (key, row) in &self.classes_by_op {
            let want = expected.get(key).map(Vec::as_slice).unwrap_or_default();
            assert_eq!(
                row.as_slice(),
                want,
                "op index row for key {key:#x} is not canonical/sorted/deduped"
            );
        }
    }

    /// Asserts the op-keyed epoch invariants on a rebuilt graph:
    ///
    /// * every class's row keys are exactly the distinct op keys of its
    ///   node list;
    /// * the class-level epoch is the maximum over its rows;
    /// * every row is **log-covered**: a delta probe for its op at a
    ///   cutoff at or below the row's epoch re-surfaces the class.
    ///
    /// Testing/debugging aid (used by the engine's property tests).
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic if any invariant is violated.
    pub fn check_op_epochs(&self) {
        assert!(
            self.is_clean(),
            "check_op_epochs requires a rebuilt e-graph"
        );
        // One pass over the per-op logs: canonical id → max logged epoch.
        // A probe at cutoff `c` re-surfaces a class iff its max logged
        // epoch is ≥ `c`, so this is exactly the coverage the row check
        // below needs — without an O(rows × log) probe per row.
        let mut coverage: HashMap<u64, HashMap<Id, u64>> = HashMap::new();
        for (key, log) in &self.modified_log_by_op {
            let map = coverage.entry(*key).or_default();
            for &(e, id) in log {
                let id = self.find(id);
                let slot = map.entry(id).or_insert(e);
                *slot = (*slot).max(e);
            }
        }
        for class in self.classes.values() {
            let mut want: Vec<u64> = class.nodes.iter().map(Language::op_key).collect();
            want.sort_unstable();
            want.dedup();
            let mut got: Vec<u64> = class.op_epochs.iter().map(|&(k, _)| k).collect();
            got.sort_unstable();
            assert_eq!(
                got, want,
                "class {}: op rows diverge from its node operators",
                class.id
            );
            let max_row = class.op_epochs.iter().map(|&(_, e)| e).max().unwrap_or(0);
            assert_eq!(
                class.modified, max_row,
                "class {}: class epoch is not the max over its op rows",
                class.id
            );
            for &(key, epoch) in &class.op_epochs {
                let covered = coverage
                    .get(&key)
                    .and_then(|m| m.get(&class.id))
                    .copied()
                    .unwrap_or(0);
                assert!(
                    covered >= epoch,
                    "class {}: row (key {key:#x}, epoch {epoch}) is not log-covered \
                     (max logged epoch {covered})",
                    class.id
                );
            }
        }
    }

    /// Extracts *some* term from a class (first constructible node, depth
    /// first). Mainly for tests; use a [`crate::extract::Extract`]
    /// strategy (e.g. [`crate::extract::WorklistExtractor`]) for
    /// cost-aware extraction.
    #[must_use]
    pub fn any_term(&self, id: Id) -> Option<RecExpr<L>> {
        let mut out = RecExpr::new();
        let mut on_stack = std::collections::HashSet::new();
        fn go<L: Language, N: Analysis<L>>(
            eg: &EGraph<L, N>,
            id: Id,
            out: &mut RecExpr<L>,
            on_stack: &mut std::collections::HashSet<Id>,
        ) -> Option<Id> {
            let id = eg.find(id);
            if !on_stack.insert(id) {
                return None; // cycle
            }
            let class = eg.classes.get(&id)?;
            for node in &class.nodes {
                let mut child_ids = Vec::new();
                let mut ok = true;
                for &c in node.children() {
                    match go(eg, c, out, on_stack) {
                        Some(cid) => child_ids.push(cid),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    let mut k = 0;
                    let remapped = node.map_children(|_| {
                        let id = child_ids[k];
                        k += 1;
                        id
                    });
                    on_stack.remove(&id);
                    return Some(out.add(remapped));
                }
            }
            on_stack.remove(&id);
            None
        }
        go(self, id, &mut out, &mut on_stack).map(|_| out)
    }
}

/// Resolves an operator-key table index read from a snapshot.
fn key_at(op_keys: &[u64], idx: u64) -> Result<u64, SnapshotError> {
    usize::try_from(idx)
        .ok()
        .and_then(|i| op_keys.get(i).copied())
        .ok_or_else(|| SnapshotError::Corrupt("operator key index out of range".into()))
}

impl<L, N> EGraph<L, N>
where
    L: SnapshotNode,
    N: SnapshotAnalysis<L>,
{
    /// Serializes the whole graph into the versioned snapshot byte format
    /// (see [`crate::snapshot`] for the framing and the operator-key
    /// indirection). The graph must be clean: a snapshot is the state a
    /// search could run against, and only rebuilt graphs have canonical
    /// node lists, compacted index rows and propagated epochs.
    ///
    /// The bytes are deterministic — hash maps are walked in sorted order
    /// — so two structurally identical graphs snapshot identically within
    /// one build.
    ///
    /// # Panics
    ///
    /// Panics if the graph has not been rebuilt since the last union.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        assert!(self.clean, "snapshot requires a rebuilt e-graph");
        let mut w = SnapshotWriter::new();
        w.u64(self.work_epoch);

        let parents = self.unionfind.parents();
        w.len(parents.len());
        for &p in parents {
            w.id(p);
        }

        // Operator-key table: one representative node per distinct key
        // (minimal by `Ord` for determinism). Every key the graph tracks
        // appears in some node list — node lists only ever grow — so the
        // table covers the op rows, index rows and per-op logs below.
        let mut reps: BTreeMap<u64, &L> = BTreeMap::new();
        for class in self.classes.values() {
            for node in &class.nodes {
                let rep = reps.entry(node.op_key()).or_insert(node);
                if node < *rep {
                    *rep = node;
                }
            }
        }
        w.len(reps.len());
        for node in reps.values() {
            node.write_node(&mut w);
        }
        let index_of: HashMap<u64, u64> = reps
            .keys()
            .enumerate()
            .map(|(i, &k)| (k, i as u64))
            .collect();
        let index_of = |key: u64| -> u64 {
            *index_of
                .get(&key)
                .expect("every tracked op key has a representative node")
        };

        let mut ids: Vec<Id> = self.classes.keys().copied().collect();
        ids.sort_unstable();
        w.len(ids.len());
        for id in ids {
            let class = &self.classes[&id];
            w.id(id);
            w.len(class.nodes.len());
            for node in &class.nodes {
                node.write_node(&mut w);
            }
            N::write_data(&class.data, &mut w);
            w.len(class.parents.len());
            for (node, pid) in &class.parents {
                node.write_node(&mut w);
                w.id(*pid);
            }
            w.u64(class.modified);
            w.len(class.op_epochs.len());
            for &(key, epoch) in &class.op_epochs {
                w.u64(index_of(key));
                w.u64(epoch);
            }
        }

        let mut op_rows: Vec<(u64, &Vec<Id>)> = self
            .classes_by_op
            .iter()
            .map(|(&k, row)| (k, row))
            .collect();
        op_rows.sort_unstable_by_key(|&(k, _)| k);
        w.len(op_rows.len());
        for (key, row) in op_rows {
            w.u64(index_of(key));
            w.len(row.len());
            for &id in row {
                w.id(id);
            }
        }

        w.len(self.modified_log.len());
        for &(e, id) in &self.modified_log {
            w.u64(e);
            w.id(id);
        }

        let mut op_logs: Vec<(u64, &Vec<(u64, Id)>)> = self
            .modified_log_by_op
            .iter()
            .map(|(&k, log)| (k, log))
            .collect();
        op_logs.sort_unstable_by_key(|&(k, _)| k);
        w.len(op_logs.len());
        for (key, log) in op_logs {
            w.u64(index_of(key));
            w.len(log.len());
            for &(e, id) in log {
                w.u64(e);
                w.id(id);
            }
        }

        self.relations.write_snapshot(&mut w);
        frame_payload(w.into_bytes())
    }

    /// Rebuilds a graph from bytes written by [`EGraph::snapshot`].
    ///
    /// Never panics on untrusted input: framing problems (truncation, bad
    /// magic, version bump, checksum mismatch) and every structural
    /// violation (non-root class ids, dangling children, cyclic
    /// union-find, unsorted delta logs, …) are rejected with a typed
    /// [`SnapshotError`] so the caller can fall back to a cold build. The
    /// restored graph is clean and search-ready; its memo is
    /// reconstructed from the class node lists, which is exact on the
    /// clean graphs [`EGraph::snapshot`] accepts.
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let payload = unframe_payload(bytes)?;
        let mut r = SnapshotReader::new(payload);
        let corrupt = |what: &str| SnapshotError::Corrupt(what.into());

        let work_epoch = r.u64()?;
        if work_epoch == 0 {
            return Err(corrupt("work epoch must be at least 1"));
        }

        let n = r.len()?;
        if u32::try_from(n).is_err() {
            return Err(corrupt("union-find too large for u32 ids"));
        }
        let mut parents = Vec::with_capacity(n);
        for _ in 0..n {
            let p = r.id()?;
            if p.index() >= n {
                return Err(corrupt("union-find parent out of bounds"));
            }
            parents.push(p);
        }
        // Reject cycles (other than root self-loops): `find` on a cyclic
        // forest would spin forever. One linear pass with tri-state marks.
        {
            let mut state = vec![0u8; n]; // 0 unvisited, 1 on path, 2 done
            for start in 0..n {
                if state[start] != 0 {
                    continue;
                }
                let mut path = Vec::new();
                let mut cur = start;
                loop {
                    match state[cur] {
                        2 => break,
                        1 => return Err(corrupt("union-find contains a cycle")),
                        _ => {}
                    }
                    state[cur] = 1;
                    path.push(cur);
                    let p = parents[cur].index();
                    if p == cur {
                        break;
                    }
                    cur = p;
                }
                for i in path {
                    state[i] = 2;
                }
            }
        }
        let unionfind = UnionFind::from_parents(parents);
        let n_roots = (0..n)
            .filter(|&i| unionfind.find(Id::from(i)) == Id::from(i))
            .count();

        let n_ops = r.len()?;
        let mut op_keys = Vec::with_capacity(n_ops);
        let mut seen_keys = HashSet::with_capacity(n_ops);
        for _ in 0..n_ops {
            let node = L::read_node(&mut r)?;
            let key = node.op_key();
            if !seen_keys.insert(key) {
                return Err(corrupt("duplicate operator in key table"));
            }
            op_keys.push(key);
        }

        let n_classes = r.len()?;
        if n_classes != n_roots {
            return Err(corrupt("class count does not match union-find roots"));
        }
        let mut classes: HashMap<Id, EClass<L, N::Data>> = HashMap::with_capacity(n_classes);
        let mut last_id: Option<Id> = None;
        for _ in 0..n_classes {
            let id = r.id()?;
            if id.index() >= n || unionfind.find(id) != id {
                return Err(corrupt("class id is not a canonical root"));
            }
            if last_id.is_some_and(|prev| id <= prev) {
                return Err(corrupt("class ids are not strictly ascending"));
            }
            last_id = Some(id);
            let n_nodes = r.len()?;
            if n_nodes == 0 {
                return Err(corrupt("class with no nodes"));
            }
            let mut nodes = Vec::with_capacity(n_nodes);
            for _ in 0..n_nodes {
                let node = L::read_node(&mut r)?;
                for &c in node.children() {
                    if c.index() >= n || unionfind.find(c) != c {
                        return Err(corrupt("node child is not a canonical class"));
                    }
                }
                nodes.push(node);
            }
            let data = N::read_data(&mut r)?;
            let n_parents = r.len()?;
            let mut class_parents = Vec::with_capacity(n_parents);
            for _ in 0..n_parents {
                let node = L::read_node(&mut r)?;
                let pid = r.id()?;
                // Parent entries may be stale (non-canonical) by design;
                // only bounds are checked.
                if pid.index() >= n || node.children().iter().any(|c| c.index() >= n) {
                    return Err(corrupt("parent entry out of bounds"));
                }
                class_parents.push((node, pid));
            }
            let modified = r.u64()?;
            if modified > work_epoch {
                return Err(corrupt("class epoch is past the clock"));
            }
            let n_rows = r.len()?;
            let mut op_epochs = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                let key = key_at(&op_keys, r.u64()?)?;
                let epoch = r.u64()?;
                if epoch > work_epoch {
                    return Err(corrupt("op row epoch is past the clock"));
                }
                op_epochs.push((key, epoch));
            }
            classes.insert(
                id,
                EClass {
                    id,
                    nodes,
                    data,
                    parents: class_parents,
                    modified,
                    op_epochs,
                },
            );
        }

        // The memo is derivable state on a clean graph: every canonical
        // node maps to the class whose node list holds it.
        let mut memo: HashMap<L, Id> = HashMap::new();
        for class in classes.values() {
            for node in &class.nodes {
                if memo.insert(node.clone(), class.id).is_some() {
                    return Err(corrupt("one e-node appears in two classes"));
                }
            }
        }

        let n_rows = r.len()?;
        let mut classes_by_op: HashMap<u64, Vec<Id>> = HashMap::with_capacity(n_rows);
        for _ in 0..n_rows {
            let key = key_at(&op_keys, r.u64()?)?;
            let len = r.len()?;
            let mut row = Vec::with_capacity(len);
            let mut prev: Option<Id> = None;
            for _ in 0..len {
                let id = r.id()?;
                if !classes.contains_key(&id) {
                    return Err(corrupt("op index row names a dead class"));
                }
                if prev.is_some_and(|p| id <= p) {
                    return Err(corrupt("op index row is not sorted and deduplicated"));
                }
                prev = Some(id);
                row.push(id);
            }
            if classes_by_op.insert(key, row).is_some() {
                return Err(corrupt("duplicate op index row"));
            }
        }

        let read_log = |r: &mut SnapshotReader<'_>| -> Result<Vec<(u64, Id)>, SnapshotError> {
            let len = r.len()?;
            let mut log = Vec::with_capacity(len);
            let mut last = 0u64;
            for _ in 0..len {
                let e = r.u64()?;
                if e < last || e > work_epoch {
                    return Err(SnapshotError::Corrupt(
                        "modification log is not sorted within the clock".into(),
                    ));
                }
                last = e;
                let id = r.id()?;
                if id.index() >= n {
                    return Err(SnapshotError::Corrupt("logged id out of bounds".into()));
                }
                log.push((e, id));
            }
            Ok(log)
        };
        let modified_log = read_log(&mut r)?;
        let n_logs = r.len()?;
        let mut modified_log_by_op: HashMap<u64, Vec<(u64, Id)>> = HashMap::with_capacity(n_logs);
        for _ in 0..n_logs {
            let key = key_at(&op_keys, r.u64()?)?;
            let log = read_log(&mut r)?;
            if modified_log_by_op.insert(key, log).is_some() {
                return Err(corrupt("duplicate per-op modification log"));
            }
        }

        let relations = Relations::read_snapshot(&mut r)?;
        if !r.is_exhausted() {
            return Err(corrupt("trailing bytes after payload"));
        }

        Ok(EGraph {
            unionfind,
            memo,
            classes,
            pending: Vec::new(),
            analysis_pending: Vec::new(),
            relations,
            clean: true,
            classes_by_op,
            dirty_ops: HashSet::new(),
            dirty_classes: Vec::new(),
            touched: Vec::new(),
            modified_log,
            modified_log_by_op,
            work_epoch,
            unioned_since_rebuild: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math_lang::Math;

    type EG = EGraph<Math, ()>;

    #[test]
    fn hashconsing_dedups() {
        let mut eg = EG::new();
        let a1 = eg.add(Math::Sym("a".into()));
        let a2 = eg.add(Math::Sym("a".into()));
        assert_eq!(a1, a2);
        assert_eq!(eg.num_classes(), 1);
    }

    #[test]
    fn union_merges_classes() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let (_, changed) = eg.union(a, b);
        assert!(changed);
        eg.rebuild();
        assert_eq!(eg.find(a), eg.find(b));
        let (_, changed2) = eg.union(a, b);
        assert!(!changed2);
    }

    #[test]
    fn congruence_closure_via_rebuild() {
        // If a ≡ b then f(a) ≡ f(b) after rebuild.
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let two = eg.add(Math::Num(2));
        let fa = eg.add(Math::Mul([a, two]));
        let fb = eg.add(Math::Mul([b, two]));
        assert_ne!(eg.find(fa), eg.find(fb));
        eg.union(a, b);
        eg.rebuild();
        assert_eq!(eg.find(fa), eg.find(fb), "congruence must unify f(a), f(b)");
    }

    #[test]
    fn transitive_congruence() {
        // g(f(a)) ≡ g(f(b)) needs two congruence steps.
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let two = eg.add(Math::Num(2));
        let fa = eg.add(Math::Mul([a, two]));
        let fb = eg.add(Math::Mul([b, two]));
        let gfa = eg.add(Math::Div([fa, two]));
        let gfb = eg.add(Math::Div([fb, two]));
        eg.union(a, b);
        eg.rebuild();
        assert_eq!(eg.find(gfa), eg.find(gfb));
    }

    #[test]
    fn lookup_respects_canonical_children() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let two = eg.add(Math::Num(2));
        let _fa = eg.add(Math::Mul([a, two]));
        eg.union(a, b);
        eg.rebuild();
        // Looking up f(b) must find f(a)'s class.
        assert!(eg.lookup(&Math::Mul([b, two])).is_some());
    }

    #[test]
    fn add_recexpr_roundtrip() {
        let mut r = RecExpr::new();
        let a = r.add(Math::Sym("a".into()));
        let two = r.add(Math::Num(2));
        let m = r.add(Math::Mul([a, two]));
        let _d = r.add(Math::Div([m, two]));
        let mut eg = EG::new();
        let root = eg.add_recexpr(&r);
        let back = eg.any_term(root).expect("extractable");
        assert_eq!(back.to_sexp(), "(/ (* a 2) 2)");
    }

    #[test]
    fn num_nodes_counts() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let _ = eg.add(Math::Mul([a, two]));
        assert_eq!(eg.num_nodes(), 3);
        assert!(!eg.is_empty());
    }

    #[test]
    fn op_index_tracks_adds_and_unions() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let two = eg.add(Math::Num(2));
        let ma = eg.add(Math::Mul([a, two]));
        let mb = eg.add(Math::Mul([b, two]));
        let key = Math::Mul([Id(0), Id(0)]).op_key();
        assert_eq!(eg.candidates_for(key), {
            let mut v = vec![ma, mb];
            v.sort_unstable();
            v
        });
        eg.check_op_index();
        // Union a ≡ b: congruence merges the two Muls; the index row must
        // compact to the single surviving class.
        eg.union(a, b);
        eg.rebuild();
        assert_eq!(eg.candidates_for(key), vec![eg.find(ma)]);
        eg.check_op_index();
    }

    #[test]
    fn op_rows_track_only_the_changed_operator() {
        // A class holding nodes of two operators with disjoint subtrees:
        // a change under one subtree must stamp only that operator's row,
        // while the per-class baseline re-surfaces the class for both.
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let c = eg.add(Math::Sym("c".into()));
        let two = eg.add(Math::Num(2));
        let three = eg.add(Math::Num(3));
        let m = eg.add(Math::Mul([a, two]));
        let d = eg.add(Math::Div([b, three]));
        eg.union(m, d); // the class now holds a Mul node and a Div node
        eg.rebuild();
        let u = eg.find(m);
        let mul_key = Math::Mul([Id(0), Id(0)]).op_key();
        let div_key = Math::Div([Id(0), Id(0)]).op_key();
        assert!(eg.class(u).op_modified_epoch(mul_key).is_some());
        assert!(eg.class(u).op_modified_epoch(div_key).is_some());
        let cutoff = eg.bump_epoch();
        // Change strictly under the Div node's subtree.
        eg.union(b, c);
        eg.rebuild();
        assert!(
            eg.modified_candidates_for(div_key, cutoff).contains(&u),
            "the Div row must re-surface the class"
        );
        assert!(
            !eg.modified_candidates_for(mul_key, cutoff).contains(&u),
            "the untouched Mul row must not re-surface the class"
        );
        assert!(
            eg.modified_candidates_per_class(mul_key, cutoff)
                .contains(&u),
            "the per-class baseline re-surfaces the class for every op it contains"
        );
        eg.check_op_epochs();
    }

    #[test]
    fn union_near_shared_leaf_stamps_only_flow_through_ops() {
        // The motivating workload shape: one widely shared leaf (`two`)
        // with Mul parents in one region and Div parents in another. A
        // union inside the Mul region must not stamp the Div parents'
        // rows, even though per-class ancestor propagation from the shared
        // leaf would have.
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let d = eg.add(Math::Div([b, two]));
        eg.rebuild();
        let cutoff = eg.bump_epoch();
        // Union at the shared leaf's sibling inside the Mul region.
        let c = eg.add(Math::Sym("c".into()));
        eg.union(a, c);
        eg.rebuild();
        let mul_key = Math::Mul([Id(0), Id(0)]).op_key();
        let div_key = Math::Div([Id(0), Id(0)]).op_key();
        assert!(eg
            .modified_candidates_for(mul_key, cutoff)
            .contains(&eg.find(m)));
        assert!(
            eg.modified_candidates_for(div_key, cutoff).is_empty(),
            "no Div row changed, so the Div probe must be empty"
        );
        assert!(
            eg.class(d).op_modified_epoch(div_key).unwrap() < cutoff,
            "the Div parent's row must keep its old epoch"
        );
        eg.check_op_epochs();
    }

    #[test]
    fn epochs_mark_modified_classes_and_ancestors() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let d = eg.add(Math::Div([m, two]));
        eg.rebuild();
        let cutoff = eg.bump_epoch();
        // Nothing modified since the bump.
        assert!(eg.classes().all(|c| c.modified_epoch() < cutoff));
        // Union deep in the graph: the union site and its transitive
        // ancestors (m, d) must carry the new epoch after rebuild.
        eg.union(a, b);
        eg.rebuild();
        for id in [a, m, d] {
            assert!(
                eg.class(id).modified_epoch() >= cutoff,
                "{id} should be marked modified"
            );
        }
        assert!(
            eg.class(two).modified_epoch() < cutoff,
            "unrelated leaf must not be marked"
        );
    }
}
