//! The e-graph: hash-consed e-nodes grouped into equivalence classes,
//! with congruence maintained by explicit rebuilding (the egg algorithm).

use std::collections::HashMap;
use std::fmt::Debug;

use crate::language::{Language, RecExpr};
use crate::relation::Relations;
use crate::unionfind::{Id, UnionFind};

/// An e-class analysis: a lattice value maintained per e-class
/// (constants, types, …). See egg's `Analysis`.
pub trait Analysis<L: Language>: Sized {
    /// Per-class data.
    type Data: Clone + PartialEq + Debug;

    /// Computes the data for a single e-node whose children are canonical.
    fn make(egraph: &EGraph<L, Self>, enode: &L) -> Self::Data;

    /// Merges `b` into `a` when two classes are unified; returns whether `a`
    /// changed (triggering re-propagation to parents).
    fn merge(a: &mut Self::Data, b: Self::Data) -> bool;
}

/// The trivial analysis.
impl<L: Language> Analysis<L> for () {
    type Data = ();
    fn make(_: &EGraph<L, Self>, _: &L) -> Self::Data {}
    fn merge(_: &mut Self::Data, _: Self::Data) -> bool {
        false
    }
}

/// An equivalence class of e-nodes.
#[derive(Debug, Clone)]
pub struct EClass<L, D> {
    /// Canonical id of this class.
    pub id: Id,
    /// E-nodes in the class (children canonical as of the last rebuild).
    pub nodes: Vec<L>,
    /// Analysis data.
    pub data: D,
    /// Parent e-nodes (and the class they live in), possibly stale.
    parents: Vec<(L, Id)>,
}

/// The e-graph.
#[derive(Debug, Clone)]
pub struct EGraph<L: Language, N: Analysis<L> = ()> {
    unionfind: UnionFind,
    memo: HashMap<L, Id>,
    classes: HashMap<Id, EClass<L, N::Data>>,
    pending: Vec<(L, Id)>,
    analysis_pending: Vec<(L, Id)>,
    /// Datalog-style relations over e-class ids (egglog's `relation`s).
    pub relations: Relations,
    clean: bool,
}

impl<L: Language, N: Analysis<L>> Default for EGraph<L, N> {
    fn default() -> Self {
        EGraph {
            unionfind: UnionFind::new(),
            memo: HashMap::new(),
            classes: HashMap::new(),
            pending: Vec::new(),
            analysis_pending: Vec::new(),
            relations: Relations::default(),
            clean: true,
        }
    }
}

impl<L: Language, N: Analysis<L>> EGraph<L, N> {
    /// Creates an empty e-graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Canonical id for `id`.
    #[must_use]
    pub fn find(&self, id: Id) -> Id {
        self.unionfind.find(id)
    }

    /// Number of e-classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Total number of e-nodes across classes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.classes.values().map(|c| c.nodes.len()).sum()
    }

    /// Whether the graph has no classes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Iterates over all e-classes.
    pub fn classes(&self) -> impl Iterator<Item = &EClass<L, N::Data>> {
        self.classes.values()
    }

    /// The class with canonical id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    #[must_use]
    pub fn class(&self, id: Id) -> &EClass<L, N::Data> {
        let id = self.find(id);
        self.classes.get(&id).expect("unknown e-class id")
    }

    /// Analysis data of a class.
    #[must_use]
    pub fn data(&self, id: Id) -> &N::Data {
        &self.class(id).data
    }

    fn canonicalize(&self, node: &L) -> L {
        node.map_children(|c| self.find(c))
    }

    /// Looks up an e-node (children need not be canonical) without inserting.
    #[must_use]
    pub fn lookup(&self, node: &L) -> Option<Id> {
        let canon = self.canonicalize(node);
        self.memo.get(&canon).map(|&id| self.find(id))
    }

    /// Adds an e-node, returning the id of its class (hash-consed).
    pub fn add(&mut self, node: L) -> Id {
        let canon = self.canonicalize(&node);
        if let Some(&existing) = self.memo.get(&canon) {
            return self.find(existing);
        }
        let id = self.unionfind.make_set();
        let data = N::make(self, &canon);
        for &child in canon.children() {
            let child = self.find(child);
            self.classes
                .get_mut(&child)
                .expect("child class must exist")
                .parents
                .push((canon.clone(), id));
        }
        self.classes.insert(
            id,
            EClass {
                id,
                nodes: vec![canon.clone()],
                data,
                parents: Vec::new(),
            },
        );
        self.memo.insert(canon, id);
        id
    }

    /// Adds a whole term bottom-up; returns the id of the root's class.
    pub fn add_recexpr(&mut self, expr: &RecExpr<L>) -> Id {
        let mut ids: Vec<Id> = Vec::with_capacity(expr.len());
        for node in expr.nodes() {
            let remapped = node.map_children(|c| ids[c.index()]);
            ids.push(self.add(remapped));
        }
        *ids.last().expect("cannot add an empty RecExpr")
    }

    /// Unions two classes; returns the surviving canonical id and whether
    /// anything changed. Requires a [`EGraph::rebuild`] before the next
    /// search (tracked by an internal dirty flag).
    pub fn union(&mut self, a: Id, b: Id) -> (Id, bool) {
        let a = self.find(a);
        let b = self.find(b);
        if a == b {
            return (a, false);
        }
        self.clean = false;
        // Keep the class with more parents as the winner to move less data.
        let (winner, loser) = {
            let pa = self.classes[&a].parents.len();
            let pb = self.classes[&b].parents.len();
            if pa >= pb {
                (a, b)
            } else {
                (b, a)
            }
        };
        self.unionfind.union_roots(winner, loser);
        let loser_class = self.classes.remove(&loser).expect("loser class exists");
        // Loser's parents must be re-canonicalized and re-hashed.
        self.pending.extend(loser_class.parents.iter().cloned());
        let winner_class = self.classes.get_mut(&winner).expect("winner class exists");
        winner_class.nodes.extend(loser_class.nodes);
        winner_class.parents.extend(loser_class.parents);
        let data_changed = N::merge(&mut winner_class.data, loser_class.data);
        if data_changed {
            self.analysis_pending
                .extend(self.classes[&winner].parents.iter().cloned());
        }
        (winner, true)
    }

    /// Restores the congruence invariant and canonicalizes memo entries,
    /// class node lists and relation tuples. Must be called after a batch of
    /// unions before the next search.
    pub fn rebuild(&mut self) {
        while !self.pending.is_empty() || !self.analysis_pending.is_empty() {
            while let Some((node, cls)) = self.pending.pop() {
                let cls = self.find(cls);
                self.memo.remove(&node);
                let canon = self.canonicalize(&node);
                if let Some(&other) = self.memo.get(&canon) {
                    let other = self.find(other);
                    if other != cls {
                        self.union(other, cls);
                    }
                } else {
                    self.memo.insert(canon, cls);
                }
            }
            while let Some((node, cls)) = self.analysis_pending.pop() {
                let cls = self.find(cls);
                let canon = self.canonicalize(&node);
                let new_data = N::make(self, &canon);
                let class = self.classes.get_mut(&cls).expect("class exists");
                if N::merge(&mut class.data, new_data) {
                    self.analysis_pending
                        .extend(self.classes[&cls].parents.iter().cloned());
                }
            }
        }
        // Canonicalize node lists and dedup.
        let ids: Vec<Id> = self.classes.keys().copied().collect();
        for id in ids {
            let mut class = self.classes.remove(&id).expect("class exists");
            for n in &mut class.nodes {
                *n = n.map_children(|c| self.unionfind.find(c));
            }
            class.nodes.sort();
            class.nodes.dedup();
            self.classes.insert(id, class);
        }
        let uf = &self.unionfind;
        self.relations.canonicalize(|id| uf.find(id));
        self.clean = true;
    }

    /// Whether the graph is rebuilt (safe to search).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.clean
    }

    /// Extracts *some* term from a class (first constructible node, depth
    /// first). Mainly for tests; use [`crate::extract::Extractor`] for
    /// cost-aware extraction.
    #[must_use]
    pub fn any_term(&self, id: Id) -> Option<RecExpr<L>> {
        let mut out = RecExpr::new();
        let mut on_stack = std::collections::HashSet::new();
        fn go<L: Language, N: Analysis<L>>(
            eg: &EGraph<L, N>,
            id: Id,
            out: &mut RecExpr<L>,
            on_stack: &mut std::collections::HashSet<Id>,
        ) -> Option<Id> {
            let id = eg.find(id);
            if !on_stack.insert(id) {
                return None; // cycle
            }
            let class = eg.classes.get(&id)?;
            for node in &class.nodes {
                let mut child_ids = Vec::new();
                let mut ok = true;
                for &c in node.children() {
                    match go(eg, c, out, on_stack) {
                        Some(cid) => child_ids.push(cid),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    let mut k = 0;
                    let remapped = node.map_children(|_| {
                        let id = child_ids[k];
                        k += 1;
                        id
                    });
                    on_stack.remove(&id);
                    return Some(out.add(remapped));
                }
            }
            on_stack.remove(&id);
            None
        }
        go(self, id, &mut out, &mut on_stack).map(|_| out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math_lang::Math;

    type EG = EGraph<Math, ()>;

    #[test]
    fn hashconsing_dedups() {
        let mut eg = EG::new();
        let a1 = eg.add(Math::Sym("a".into()));
        let a2 = eg.add(Math::Sym("a".into()));
        assert_eq!(a1, a2);
        assert_eq!(eg.num_classes(), 1);
    }

    #[test]
    fn union_merges_classes() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let (_, changed) = eg.union(a, b);
        assert!(changed);
        eg.rebuild();
        assert_eq!(eg.find(a), eg.find(b));
        let (_, changed2) = eg.union(a, b);
        assert!(!changed2);
    }

    #[test]
    fn congruence_closure_via_rebuild() {
        // If a ≡ b then f(a) ≡ f(b) after rebuild.
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let two = eg.add(Math::Num(2));
        let fa = eg.add(Math::Mul([a, two]));
        let fb = eg.add(Math::Mul([b, two]));
        assert_ne!(eg.find(fa), eg.find(fb));
        eg.union(a, b);
        eg.rebuild();
        assert_eq!(eg.find(fa), eg.find(fb), "congruence must unify f(a), f(b)");
    }

    #[test]
    fn transitive_congruence() {
        // g(f(a)) ≡ g(f(b)) needs two congruence steps.
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let two = eg.add(Math::Num(2));
        let fa = eg.add(Math::Mul([a, two]));
        let fb = eg.add(Math::Mul([b, two]));
        let gfa = eg.add(Math::Div([fa, two]));
        let gfb = eg.add(Math::Div([fb, two]));
        eg.union(a, b);
        eg.rebuild();
        assert_eq!(eg.find(gfa), eg.find(gfb));
    }

    #[test]
    fn lookup_respects_canonical_children() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let two = eg.add(Math::Num(2));
        let _fa = eg.add(Math::Mul([a, two]));
        eg.union(a, b);
        eg.rebuild();
        // Looking up f(b) must find f(a)'s class.
        assert!(eg.lookup(&Math::Mul([b, two])).is_some());
    }

    #[test]
    fn add_recexpr_roundtrip() {
        let mut r = RecExpr::new();
        let a = r.add(Math::Sym("a".into()));
        let two = r.add(Math::Num(2));
        let m = r.add(Math::Mul([a, two]));
        let _d = r.add(Math::Div([m, two]));
        let mut eg = EG::new();
        let root = eg.add_recexpr(&r);
        let back = eg.any_term(root).expect("extractable");
        assert_eq!(back.to_sexp(), "(/ (* a 2) 2)");
    }

    #[test]
    fn num_nodes_counts() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let _ = eg.add(Math::Mul([a, two]));
        assert_eq!(eg.num_nodes(), 3);
        assert!(!eg.is_empty());
    }
}
