//! A minimal fixed worker pool for parallel rule *search*.
//!
//! The scheduler's parallel search path ([`crate::schedule::Runner`],
//! `search_threads > 1`) partitions one rule's root enumeration into
//! chunks and evaluates the join for each chunk concurrently against an
//! immutable `&EGraph` snapshot. That needs a pool that can run closures
//! borrowing the caller's stack — `rayon`-style scoped execution — without
//! adding a dependency and without paying a `std::thread::spawn` per
//! search (a saturation run performs hundreds of searches; spawning per
//! search would cost more than the searches themselves).
//!
//! [`SearchPool::scatter`] is the whole API: hand it one closure per
//! chunk, it runs them across the workers (and the calling thread) and
//! returns when **all** of them have finished. Blocking until every job
//! reports back is what makes the lifetime erasure sound: the jobs borrow
//! state owned by the caller's frame, and the caller cannot regain control
//! (or unwind) until no worker can touch those borrows anymore.
//!
//! A panicking job does not poison the pool: the worker catches the
//! unwind, hands the payload back, and `scatter` re-raises it on the
//! calling thread *after* the barrier — so a fault injected into a rule
//! search under parallelism surfaces exactly like the serial panic would,
//! and the session layer's `catch_unwind` isolation keeps working.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Process-wide count of [`SearchPool::new`] calls — the observable the
/// pool-reuse regression tests pin down (a session compiling N programs
/// must construct one pool, not N).
static CONSTRUCTIONS: AtomicUsize = AtomicUsize::new(0);

/// A lifetime-erased job. `scatter` transmutes `'env` closures to
/// `'static` before queueing them; soundness comes from the completion
/// barrier (see the module docs).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// One job's completion receipt: normal return or a caught panic payload.
type Receipt = Result<(), Box<dyn std::any::Any + Send>>;

/// Fixed pool of `threads - 1` workers plus the calling thread (so
/// `SearchPool::new(2)` uses exactly two threads during a scatter, not
/// three).
#[derive(Debug)]
pub struct SearchPool {
    threads: usize,
    jobs: Option<Sender<(Job, Sender<Receipt>)>>,
    workers: Vec<JoinHandle<()>>,
}

impl SearchPool {
    /// A pool that runs scattered jobs on `threads` threads in total
    /// (`threads - 1` spawned workers; the caller's thread runs the first
    /// job of every scatter). `threads` is clamped to at least 1; a
    /// 1-thread pool spawns nothing and `scatter` degenerates to running
    /// the jobs in order on the caller.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        CONSTRUCTIONS.fetch_add(1, Ordering::Relaxed);
        let threads = threads.max(1);
        let (tx, rx) = channel::<(Job, Sender<Receipt>)>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads - 1)
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    // Holding the lock only across `recv` is the classic
                    // shared-receiver pool: one idle worker blocks on the
                    // channel, the rest block on the mutex; each dequeued
                    // job releases the lock before running.
                    let job = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => break,
                    };
                    let Ok((job, receipt_tx)) = job else { break };
                    let receipt = catch_unwind(AssertUnwindSafe(job));
                    // A dropped receiver means the scatterer is already
                    // unwinding; the job still ran, nothing to report.
                    let _ = receipt_tx.send(receipt);
                })
            })
            .collect();
        SearchPool {
            threads,
            jobs: Some(tx),
            workers,
        }
    }

    /// Total threads a scatter uses (spawned workers + the caller).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// How many pools this process has ever constructed. Monotone and
    /// process-wide — tests assert on the *difference* across a region,
    /// not the absolute value.
    #[must_use]
    pub fn constructions() -> usize {
        CONSTRUCTIONS.load(Ordering::Relaxed)
    }

    /// Runs every job to completion, distributing them across the workers
    /// and the calling thread, then returns. Jobs may borrow from the
    /// caller's stack (`'env`): the internal barrier guarantees no job
    /// outlives this call.
    ///
    /// # Panics
    ///
    /// If any job panicked, the first panic payload (in job order) is
    /// re-raised here — after every job has finished, so borrows stay
    /// sound even across the unwind.
    pub fn scatter<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if jobs.is_empty() {
            return;
        }
        let (receipt_tx, receipt_rx): (Sender<Receipt>, Receiver<Receipt>) = channel();
        let mut jobs = jobs.into_iter();
        let first = jobs.next().expect("checked non-empty");
        let mut queued = 0usize;
        for job in jobs {
            // SAFETY: the job only runs before this function returns (we
            // block on one receipt per queued job below, and on the inline
            // job, before returning or unwinding), so every `'env` borrow
            // it captures is live for its whole execution. Only the
            // lifetime is transmuted; the vtable/layout of
            // `Box<dyn FnOnce + Send>` is unchanged.
            let job: Job = unsafe {
                std::mem::transmute::<
                    Box<dyn FnOnce() + Send + 'env>,
                    Box<dyn FnOnce() + Send + 'static>,
                >(job)
            };
            self.jobs
                .as_ref()
                .expect("pool alive while scattering")
                .send((job, receipt_tx.clone()))
                .expect("workers alive while pool is alive");
            queued += 1;
        }
        // The caller is a worker too: run the first chunk here while the
        // queued chunks execute, catching a panic so the barrier below
        // still runs.
        let mut first_panic = catch_unwind(AssertUnwindSafe(first)).err();
        // Barrier: one receipt per queued job, whatever order they finish
        // in. (Job *results* are written into per-chunk output slots by
        // the closures themselves, so completion order never affects
        // observable ordering.)
        for _ in 0..queued {
            let receipt = receipt_rx
                .recv()
                .expect("every queued job sends exactly one receipt");
            if let Err(payload) = receipt {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for SearchPool {
    fn drop(&mut self) {
        // Closing the channel wakes every worker out of `recv`.
        self.jobs.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scatter_runs_every_job_and_blocks_until_done() {
        let pool = SearchPool::new(3);
        assert_eq!(pool.threads(), 3);
        let counter = AtomicUsize::new(0);
        let mut outs = vec![0usize; 8];
        {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = outs
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    let counter = &counter;
                    Box::new(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                        *slot = i + 1;
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.scatter(jobs);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8);
        assert_eq!(outs, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = SearchPool::new(1);
        let mut hit = false;
        pool.scatter(vec![Box::new(|| hit = true)]);
        assert!(hit);
    }

    #[test]
    fn panicking_job_resurfaces_after_the_barrier() {
        let pool = SearchPool::new(2);
        let finished = AtomicUsize::new(0);
        let err = catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
                Box::new(|| panic!("injected fault: pool test")),
                Box::new(|| {
                    finished.fetch_add(1, Ordering::Relaxed);
                }),
                Box::new(|| {
                    finished.fetch_add(1, Ordering::Relaxed);
                }),
            ];
            pool.scatter(jobs);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("injected fault"), "{msg}");
        // The barrier held: the surviving jobs all ran before the unwind.
        assert_eq!(finished.load(Ordering::Relaxed), 2);
        // The pool survives a panicking scatter.
        let mut ok = false;
        pool.scatter(vec![Box::new(|| ok = true)]);
        assert!(ok);
    }
}
