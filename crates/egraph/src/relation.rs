//! Datalog-style relations over e-class ids (egglog's `relation`).
//!
//! HARDBOILED uses relations such as `amx-B-tile` to decouple
//! application-specific tile-discovery rules from hardware lowering rules.
//! Tuples store e-class ids and are re-canonicalized on every rebuild.
//!
//! ## Change ticks (the semi-naive delta protocol)
//!
//! Every tuple carries the **tick** of its last change, where a "change" is
//! either the tuple's insertion or a canonicalization that rewrote its ids
//! (a remapped tuple can join with pattern matches it could not join with
//! before, so delta evaluation must treat it as new). [`Relations::tick`]
//! exposes the monotone clock; [`Relations::tuples_since`] enumerates the
//! tuples of one relation changed *after* a recorded tick. The scheduler
//! records the tick before each rule's search, so a relation atom's delta
//! probe sees exactly the tuples that changed since that rule last ran —
//! see `rewrite::CompiledQuery::search_delta` for the join rounds built on
//! top of this.
//!
//! [`Relations::version`] is different and unchanged: it counts *new facts*
//! only (canonicalization never bumps it) and gates the scheduler's
//! conservative full-search fallback for rules with impure guards.
//!
//! Change reads are **log-backed**, mirroring the e-graph's per-op delta
//! logs: every relation keeps an append-only `(tick, tuple)` change log
//! (compacted deterministically from the table once it outgrows it), so a
//! [`Relations::tuples_since`] delta round costs O(changes to that
//! relation) — not a scan of its whole table.

use std::collections::{BTreeMap, HashMap};

use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use crate::unionfind::Id;

/// A set of named relations, each a set of id tuples stamped with the tick
/// of their last change.
#[derive(Debug, Clone, Default)]
pub struct Relations {
    tables: HashMap<String, BTreeMap<Vec<Id>, u64>>,
    /// Highest tuple stamp per relation — the O(1) "anything changed since
    /// tick t?" probe backing [`Relations::changed_since`].
    max_ticks: HashMap<String, u64>,
    /// Per-relation append-only `(tick, tuple)` change logs, ticks
    /// nondecreasing — the delta read path behind
    /// [`Relations::tuples_since`]. A log entry is *current* while the
    /// table still stamps its tuple at that tick; superseded and
    /// merged-away entries are filtered on read and dropped by compaction.
    change_logs: HashMap<String, Vec<(u64, Vec<Id>)>>,
    version: u64,
    tick: u64,
}

/// Rebuilds a relation's change log from its table once the log outgrows
/// it: one entry per live tuple at its current stamp, ordered by
/// `(tick, tuple)` — deterministic (the table is a `BTreeMap`) and exact
/// for every future cutoff.
fn compact_change_log(log: &mut Vec<(u64, Vec<Id>)>, table: &BTreeMap<Vec<Id>, u64>) {
    if log.len() <= 64.max(4 * table.len()) {
        return;
    }
    let mut fresh: Vec<(u64, Vec<Id>)> = table
        .iter()
        .map(|(tuple, &tick)| (tick, tuple.clone()))
        .collect();
    fresh.sort_unstable();
    *log = fresh;
}

impl Relations {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a relation (idempotent). Insertion auto-declares, so this is
    /// only needed when emptiness of an undeclared relation matters.
    pub fn declare(&mut self, name: &str) {
        self.tables.entry(name.to_string()).or_default();
    }

    /// Inserts a tuple; returns whether it was new.
    pub fn insert(&mut self, name: &str, tuple: Vec<Id>) -> bool {
        let table = self.tables.entry(name.to_string()).or_default();
        if table.contains_key(&tuple) {
            return false;
        }
        self.tick += 1;
        let log = self.change_logs.entry(name.to_string()).or_default();
        log.push((self.tick, tuple.clone()));
        table.insert(tuple, self.tick);
        compact_change_log(log, table);
        self.max_ticks.insert(name.to_string(), self.tick);
        self.version += 1;
        true
    }

    /// A counter bumped every time a genuinely new tuple is inserted.
    ///
    /// Canonicalization does not bump it: merging tuples never creates new
    /// facts. The scheduler uses this to decide whether a rule with an
    /// impure guard must fall back to a full search.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The change clock: advanced on every insertion *and* whenever
    /// canonicalization rewrites at least one tuple. A caller that records
    /// `tick()` and later asks [`Relations::tuples_since`] for that value
    /// sees exactly the tuples changed after the recording.
    #[must_use]
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Whether the tuple is present.
    #[must_use]
    pub fn contains(&self, name: &str, tuple: &[Id]) -> bool {
        self.tables.get(name).is_some_and(|t| t.contains_key(tuple))
    }

    /// All tuples of a relation (empty iterator if undeclared).
    pub fn tuples(&self, name: &str) -> impl Iterator<Item = &Vec<Id>> {
        self.tables.get(name).into_iter().flatten().map(|(t, _)| t)
    }

    /// Whether the relation has any tuple changed strictly after tick
    /// `cutoff`. O(1) — the probe semi-naive evaluation uses to skip
    /// empty delta rounds without scanning the table.
    #[must_use]
    pub fn changed_since(&self, name: &str, cutoff: u64) -> bool {
        self.max_ticks.get(name).is_some_and(|&max| max > cutoff)
    }

    /// Tuples of a relation changed (inserted or canonicalized-rewritten)
    /// strictly after tick `cutoff` — the semi-naive delta read path.
    /// Reads the change-log tail, so the cost is O(changes after
    /// `cutoff`), not O(table); a log entry yields its tuple only while
    /// the table still stamps that tuple at the entry's tick, which
    /// filters superseded and merged-away entries and deduplicates in one
    /// check. Check [`Relations::changed_since`] first to avoid even the
    /// tail walk when nothing changed.
    pub fn tuples_since(&self, name: &str, cutoff: u64) -> impl Iterator<Item = &Vec<Id>> {
        let table = self.tables.get(name);
        let log = self.change_logs.get(name).map_or(&[][..], Vec::as_slice);
        let start = log.partition_point(|&(t, _)| t <= cutoff);
        log[start..]
            .iter()
            .filter_map(move |(tick, tuple)| (table?.get(tuple) == Some(tick)).then_some(tuple))
    }

    /// Number of tuples in a relation.
    #[must_use]
    pub fn len(&self, name: &str) -> usize {
        self.tables.get(name).map_or(0, BTreeMap::len)
    }

    /// Whether the relation has no tuples.
    #[must_use]
    pub fn is_empty(&self, name: &str) -> bool {
        self.len(name) == 0
    }

    /// Total number of tuples across all relations.
    #[must_use]
    pub fn total_tuples(&self) -> usize {
        self.tables.values().map(BTreeMap::len).sum()
    }

    /// Rewrites every id in every tuple with `find`, merging tuples that
    /// become equal. Called by the e-graph on rebuild.
    ///
    /// Tuples whose ids actually change are stamped with a fresh tick
    /// (they can join differently now); unchanged tuples keep their stamp,
    /// so a saturated store stays invisible to delta probes. When a changed
    /// and an unchanged tuple merge, the merged tuple keeps the *newest*
    /// stamp.
    pub fn canonicalize(&mut self, find: impl Fn(Id) -> Id) {
        let mut bumped = false;
        for (name, table) in &mut self.tables {
            let needs_rewrite = table.keys().any(|t| t.iter().any(|&id| find(id) != id));
            if !needs_rewrite {
                continue;
            }
            if !bumped {
                self.tick += 1;
                bumped = true;
            }
            let mut new: BTreeMap<Vec<Id>, u64> = BTreeMap::new();
            for (tuple, changed) in std::mem::take(table) {
                let canon: Vec<Id> = tuple.iter().map(|&id| find(id)).collect();
                let stamp = if canon == tuple { changed } else { self.tick };
                let slot = new.entry(canon).or_insert(stamp);
                *slot = (*slot).max(stamp);
            }
            *table = new;
            let log = self.change_logs.entry(name.clone()).or_default();
            // Log the restamped tuples (ordered table walk → entries with
            // the shared tick are appended in deterministic tuple order).
            for (tuple, &stamp) in table.iter() {
                if stamp == self.tick {
                    log.push((stamp, tuple.clone()));
                }
            }
            compact_change_log(log, table);
            self.max_ticks.insert(name.clone(), self.tick);
        }
    }

    /// Serializes the whole store into a snapshot payload. Hash maps are
    /// walked in sorted name order so the bytes are deterministic.
    pub(crate) fn write_snapshot(&self, w: &mut SnapshotWriter) {
        let mut names: Vec<&String> = self.tables.keys().collect();
        names.sort_unstable();
        w.len(names.len());
        for name in names {
            w.str(name);
            let table = &self.tables[name];
            w.len(table.len());
            for (tuple, &tick) in table {
                w.len(tuple.len());
                for &id in tuple {
                    w.id(id);
                }
                w.u64(tick);
            }
        }
        let mut names: Vec<&String> = self.max_ticks.keys().collect();
        names.sort_unstable();
        w.len(names.len());
        for name in names {
            w.str(name);
            w.u64(self.max_ticks[name]);
        }
        let mut names: Vec<&String> = self.change_logs.keys().collect();
        names.sort_unstable();
        w.len(names.len());
        for name in names {
            w.str(name);
            let log = &self.change_logs[name];
            w.len(log.len());
            for (tick, tuple) in log {
                w.u64(*tick);
                w.len(tuple.len());
                for &id in tuple {
                    w.id(id);
                }
            }
        }
        w.u64(self.version);
        w.u64(self.tick);
    }

    /// Deserializes a store written by [`Relations::write_snapshot`].
    /// Validates what the delta read paths rely on: change-log ticks
    /// nondecreasing (`tuples_since` uses `partition_point`) and every
    /// stamp at or below the restored clock.
    pub(crate) fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let mut tables: HashMap<String, BTreeMap<Vec<Id>, u64>> = HashMap::new();
        let n_tables = r.len()?;
        for _ in 0..n_tables {
            let name = r.str()?;
            let mut table = BTreeMap::new();
            let n_tuples = r.len()?;
            for _ in 0..n_tuples {
                let arity = r.len()?;
                let mut tuple = Vec::with_capacity(arity);
                for _ in 0..arity {
                    tuple.push(r.id()?);
                }
                let tick = r.u64()?;
                table.insert(tuple, tick);
            }
            if tables.insert(name, table).is_some() {
                return Err(SnapshotError::Corrupt("duplicate relation table".into()));
            }
        }
        let mut max_ticks: HashMap<String, u64> = HashMap::new();
        let n_max = r.len()?;
        for _ in 0..n_max {
            let name = r.str()?;
            let tick = r.u64()?;
            max_ticks.insert(name, tick);
        }
        let mut change_logs: HashMap<String, Vec<(u64, Vec<Id>)>> = HashMap::new();
        let n_logs = r.len()?;
        for _ in 0..n_logs {
            let name = r.str()?;
            let n_entries = r.len()?;
            let mut log = Vec::with_capacity(n_entries);
            let mut last_tick = 0u64;
            for _ in 0..n_entries {
                let tick = r.u64()?;
                if tick < last_tick {
                    return Err(SnapshotError::Corrupt(
                        "relation change log is not sorted by tick".into(),
                    ));
                }
                last_tick = tick;
                let arity = r.len()?;
                let mut tuple = Vec::with_capacity(arity);
                for _ in 0..arity {
                    tuple.push(r.id()?);
                }
                log.push((tick, tuple));
            }
            change_logs.insert(name, log);
        }
        let version = r.u64()?;
        let tick = r.u64()?;
        for (name, table) in &tables {
            if table.values().any(|&stamp| stamp > tick) {
                return Err(SnapshotError::Corrupt(format!(
                    "relation {name:?} stamps a tuple past the clock"
                )));
            }
        }
        Ok(Relations {
            tables,
            max_ticks,
            change_logs,
            version,
            tick,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut r = Relations::new();
        assert!(r.insert("amx-B-tile", vec![Id(1), Id(2)]));
        assert!(!r.insert("amx-B-tile", vec![Id(1), Id(2)]), "duplicate");
        assert!(r.contains("amx-B-tile", &[Id(1), Id(2)]));
        assert!(!r.contains("amx-B-tile", &[Id(2), Id(1)]));
        assert_eq!(r.len("amx-B-tile"), 1);
        assert_eq!(r.len("missing"), 0);
        assert!(r.is_empty("missing"));
        assert_eq!(r.total_tuples(), 1);
    }

    #[test]
    fn canonicalize_merges_tuples() {
        let mut r = Relations::new();
        r.insert("rel", vec![Id(1), Id(5)]);
        r.insert("rel", vec![Id(2), Id(5)]);
        // Pretend 2 was unioned into 1.
        r.canonicalize(|id| if id == Id(2) { Id(1) } else { id });
        assert_eq!(r.len("rel"), 1);
        assert!(r.contains("rel", &[Id(1), Id(5)]));
    }

    #[test]
    fn declare_makes_visible_empty_relation() {
        let mut r = Relations::new();
        r.declare("has-type");
        assert!(r.is_empty("has-type"));
        assert_eq!(r.tuples("has-type").count(), 0);
    }

    #[test]
    fn tuples_since_sees_only_new_insertions() {
        let mut r = Relations::new();
        r.insert("rel", vec![Id(1)]);
        let cutoff = r.tick();
        assert_eq!(r.tuples_since("rel", cutoff).count(), 0);
        assert!(!r.changed_since("rel", cutoff));
        r.insert("rel", vec![Id(2)]);
        let delta: Vec<_> = r.tuples_since("rel", cutoff).cloned().collect();
        assert_eq!(delta, vec![vec![Id(2)]]);
        assert!(r.changed_since("rel", cutoff));
        // Re-inserting an existing tuple is not a change.
        let cutoff2 = r.tick();
        r.insert("rel", vec![Id(2)]);
        assert_eq!(r.tuples_since("rel", cutoff2).count(), 0);
        assert!(!r.changed_since("rel", cutoff2));
        // The probe is per-relation: changes elsewhere don't leak in.
        r.insert("other", vec![Id(3)]);
        assert!(!r.changed_since("rel", cutoff2));
        assert!(r.changed_since("other", cutoff2));
    }

    #[test]
    fn canonicalization_restamps_rewritten_tuples_only() {
        let mut r = Relations::new();
        r.insert("rel", vec![Id(1)]);
        r.insert("rel", vec![Id(2)]);
        let cutoff = r.tick();
        // 2 unioned into 1: tuple [2] is rewritten to [1] and merges with
        // the unchanged [1]; the merged tuple must look new to a delta
        // probe (it can join differently now), and version must not move.
        let version = r.version();
        r.canonicalize(|id| if id == Id(2) { Id(1) } else { id });
        assert_eq!(r.version(), version, "canonicalization mints no facts");
        let delta: Vec<_> = r.tuples_since("rel", cutoff).cloned().collect();
        assert_eq!(delta, vec![vec![Id(1)]]);
        // An identity canonicalization changes nothing.
        let cutoff2 = r.tick();
        r.canonicalize(|id| id);
        assert_eq!(r.tuples_since("rel", cutoff2).count(), 0);
    }
}
