//! Datalog-style relations over e-class ids (egglog's `relation`).
//!
//! HARDBOILED uses relations such as `amx-B-tile` to decouple
//! application-specific tile-discovery rules from hardware lowering rules.
//! Tuples store e-class ids and are re-canonicalized on every rebuild.

use std::collections::{BTreeSet, HashMap};

use crate::unionfind::Id;

/// A set of named relations, each a set of id tuples.
#[derive(Debug, Clone, Default)]
pub struct Relations {
    tables: HashMap<String, BTreeSet<Vec<Id>>>,
    version: u64,
}

impl Relations {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a relation (idempotent). Insertion auto-declares, so this is
    /// only needed when emptiness of an undeclared relation matters.
    pub fn declare(&mut self, name: &str) {
        self.tables.entry(name.to_string()).or_default();
    }

    /// Inserts a tuple; returns whether it was new.
    pub fn insert(&mut self, name: &str, tuple: Vec<Id>) -> bool {
        let new = self
            .tables
            .entry(name.to_string())
            .or_default()
            .insert(tuple);
        if new {
            self.version += 1;
        }
        new
    }

    /// A counter bumped every time a genuinely new tuple is inserted.
    ///
    /// Canonicalization does not bump it: merging tuples never creates new
    /// facts. The scheduler uses this to decide whether a rule's delta
    /// search can safely skip unchanged e-classes.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether the tuple is present.
    #[must_use]
    pub fn contains(&self, name: &str, tuple: &[Id]) -> bool {
        self.tables
            .get(name)
            .is_some_and(|t| t.contains(&tuple.to_vec()))
    }

    /// All tuples of a relation (empty iterator if undeclared).
    pub fn tuples(&self, name: &str) -> impl Iterator<Item = &Vec<Id>> {
        self.tables.get(name).into_iter().flatten()
    }

    /// Number of tuples in a relation.
    #[must_use]
    pub fn len(&self, name: &str) -> usize {
        self.tables.get(name).map_or(0, BTreeSet::len)
    }

    /// Whether the relation has no tuples.
    #[must_use]
    pub fn is_empty(&self, name: &str) -> bool {
        self.len(name) == 0
    }

    /// Total number of tuples across all relations.
    #[must_use]
    pub fn total_tuples(&self) -> usize {
        self.tables.values().map(BTreeSet::len).sum()
    }

    /// Rewrites every id in every tuple with `find`, merging tuples that
    /// become equal. Called by the e-graph on rebuild.
    pub fn canonicalize(&mut self, find: impl Fn(Id) -> Id) {
        for table in self.tables.values_mut() {
            let new: BTreeSet<Vec<Id>> = table
                .iter()
                .map(|t| t.iter().map(|&id| find(id)).collect())
                .collect();
            *table = new;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut r = Relations::new();
        assert!(r.insert("amx-B-tile", vec![Id(1), Id(2)]));
        assert!(!r.insert("amx-B-tile", vec![Id(1), Id(2)]), "duplicate");
        assert!(r.contains("amx-B-tile", &[Id(1), Id(2)]));
        assert!(!r.contains("amx-B-tile", &[Id(2), Id(1)]));
        assert_eq!(r.len("amx-B-tile"), 1);
        assert_eq!(r.len("missing"), 0);
        assert!(r.is_empty("missing"));
        assert_eq!(r.total_tuples(), 1);
    }

    #[test]
    fn canonicalize_merges_tuples() {
        let mut r = Relations::new();
        r.insert("rel", vec![Id(1), Id(5)]);
        r.insert("rel", vec![Id(2), Id(5)]);
        // Pretend 2 was unioned into 1.
        r.canonicalize(|id| if id == Id(2) { Id(1) } else { id });
        assert_eq!(r.len("rel"), 1);
        assert!(r.contains("rel", &[Id(1), Id(5)]));
    }

    #[test]
    fn declare_makes_visible_empty_relation() {
        let mut r = Relations::new();
        r.declare("has-type");
        assert!(r.is_empty("has-type"));
        assert_eq!(r.tuples("has-type").count(), 0);
    }
}
