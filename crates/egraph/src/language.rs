//! The [`Language`] trait: what an e-graph is generic over.

use std::fmt::Debug;
use std::hash::{Hash, Hasher};

use crate::unionfind::Id;

/// An e-node operator with child e-class ids.
///
/// Implementations are enums whose variants carry payloads (names, literal
/// values, lane counts…) plus `Id` children. Two e-nodes *match* when they
/// have the same operator and payload; their children are compared
/// separately by the e-graph / pattern matcher.
pub trait Language: Clone + Eq + Hash + Ord + Debug + Send + Sync {
    /// Child e-class ids, in order.
    fn children(&self) -> &[Id];

    /// Mutable child ids (used for canonicalization).
    fn children_mut(&mut self) -> &mut [Id];

    /// Whether the operator and payload match, ignoring children.
    fn matches_op(&self, other: &Self) -> bool;

    /// Short operator name for debugging / printing.
    fn op_name(&self) -> String;

    /// A 64-bit discriminant of the operator *and payload*, ignoring
    /// children, used by the e-graph's operator index for indexed
    /// e-matching.
    ///
    /// Contract: `a.matches_op(&b)` must imply `a.op_key() == b.op_key()`.
    /// Collisions in the other direction are allowed — they only cost the
    /// matcher a wasted candidate, which [`Language::matches_op`] filters
    /// out.
    ///
    /// The default implementation hashes [`Language::op_name`], which is
    /// correct whenever `matches_op` implies equal names (true of every
    /// language in this repository). Implementations should override it
    /// with a direct discriminant+payload hash to skip the `String`
    /// allocation on every [`crate::egraph::EGraph::add`].
    fn op_key(&self) -> u64 {
        let mut h = op_hasher();
        self.op_name().hash(&mut h);
        h.finish()
    }

    /// Replaces each child with `f(child)` (canonicalization helper).
    fn map_children(&self, mut f: impl FnMut(Id) -> Id) -> Self {
        let mut out = self.clone();
        for c in out.children_mut() {
            *c = f(*c);
        }
        out
    }
}

/// A fresh hasher for [`Language::op_key`] implementations.
///
/// `DefaultHasher::new()` uses fixed keys, so op keys are stable within and
/// across runs of the same binary (the index never leaves the process, so
/// cross-version stability is not required).
#[must_use]
pub fn op_hasher() -> std::collections::hash_map::DefaultHasher {
    std::collections::hash_map::DefaultHasher::new()
}

/// A term over `L`: nodes stored in a flat vector, children referring to
/// earlier indices, the last node being the root. This is the tree form
/// returned by extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecExpr<L> {
    nodes: Vec<L>,
}

impl<L: Language> Default for RecExpr<L> {
    fn default() -> Self {
        RecExpr { nodes: Vec::new() }
    }
}

impl<L: Language> RecExpr<L> {
    /// Creates an empty term.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a node whose children (as `Id`s) index earlier nodes.
    /// Returns the index of the new node as an `Id`.
    pub fn add(&mut self, node: L) -> Id {
        for &c in node.children() {
            assert!(
                c.index() < self.nodes.len(),
                "RecExpr children must reference earlier nodes"
            );
        }
        self.nodes.push(node);
        Id::from(self.nodes.len() - 1)
    }

    /// The root node (last added).
    ///
    /// # Panics
    ///
    /// Panics if the expression is empty.
    #[must_use]
    pub fn root(&self) -> &L {
        self.nodes.last().expect("empty RecExpr has no root")
    }

    /// Index of the root.
    #[must_use]
    pub fn root_id(&self) -> Id {
        Id::from(self.nodes.len() - 1)
    }

    /// Node at `id`.
    #[must_use]
    pub fn node(&self, id: Id) -> &L {
        &self.nodes[id.index()]
    }

    /// All nodes in insertion order.
    #[must_use]
    pub fn nodes(&self) -> &[L] {
        &self.nodes
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the expression has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Pretty prints as an s-expression from the root.
    #[must_use]
    pub fn to_sexp(&self) -> String {
        fn go<L: Language>(rec: &RecExpr<L>, id: Id, out: &mut String) {
            let node = rec.node(id);
            if node.children().is_empty() {
                out.push_str(&node.op_name());
                return;
            }
            out.push('(');
            out.push_str(&node.op_name());
            for &c in node.children() {
                out.push(' ');
                go(rec, c, out);
            }
            out.push(')');
        }
        let mut s = String::new();
        if !self.is_empty() {
            go(self, self.root_id(), &mut s);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math_lang::Math;

    #[test]
    fn recexpr_builds_and_prints() {
        let mut r = RecExpr::<Math>::new();
        let a = r.add(Math::Sym("a".into()));
        let two = r.add(Math::Num(2));
        let mul = r.add(Math::Mul([a, two]));
        let _div = r.add(Math::Div([mul, two]));
        assert_eq!(r.len(), 4);
        assert_eq!(r.to_sexp(), "(/ (* a 2) 2)");
        assert_eq!(r.root().op_name(), "/");
    }

    #[test]
    #[should_panic(expected = "earlier nodes")]
    fn recexpr_rejects_forward_children() {
        let mut r = RecExpr::<Math>::new();
        let _ = r.add(Math::Mul([Id(5), Id(6)]));
    }

    #[test]
    fn map_children_remaps() {
        let n = Math::Mul([Id(0), Id(1)]);
        let m = n.map_children(|c| Id(c.0 + 10));
        assert_eq!(m.children(), &[Id(10), Id(11)]);
        assert!(n.matches_op(&m));
    }
}
