//! Patterns and e-matching.
//!
//! A [`Pattern`] is a term with named holes. Matching has two
//! implementations with identical semantics:
//!
//! * the **compiled, indexed matcher** ([`Pattern::compile`] →
//!   [`CompiledPattern`]): variables are interned to `u32` slots once at
//!   compile time, substitutions are flat `Vec<Option<Id>>` slot tables
//!   (no string hashing or per-binding allocation), and whole-graph
//!   searches enumerate only the classes the e-graph's operator index
//!   reports as candidates for the pattern root's [`crate::language::Language::op_key`];
//! * the **naive reference matcher** ([`Pattern::search`] /
//!   [`Pattern::search_class`]): the original walk over every class,
//!   retained verbatim as the oracle for equivalence tests and for
//!   benchmarking the indexed path against (see `Runner::use_naive_matcher`).
//!
//! [`Subst`] keeps its string-keyed API ([`Subst::get`], [`Subst::bind`])
//! as a compatibility shim for rule appliers; internally it is a shared
//! variable table plus a dense slot→binding vector.
//!
//! The compiled matcher never allocates per candidate: every binding row
//! (`Vec<Option<Id>>`) and row list it needs comes from a [`MatchScratch`]
//! arena that recycles buffers across candidates, atoms, rules and passes.
//! Callers that search in a loop (the scheduler, above all) hold one
//! `MatchScratch` for the whole run and thread it through the `_with`
//! search entry points; the scratch-less entry points create a transient
//! arena and are intended for one-off searches and tests. Rows only leave
//! the arena when they graduate into [`Subst`]s handed to rule appliers.

use std::sync::Arc;

use crate::egraph::{Analysis, EGraph};
use crate::language::Language;
use crate::unionfind::Id;

/// Reusable buffers for the compiled matcher: binding rows and row lists
/// are taken from (and returned to) these free lists instead of being
/// allocated per candidate. One scratch per saturation run amortizes
/// essentially all match-loop allocation.
///
/// The scratch is language-independent (rows are plain `Vec<Option<Id>>`),
/// so one arena serves every rule in a rule set regardless of variable
/// counts: rows are resized to the width each query needs when taken.
///
/// The scratch doubles as the **delta-probe counter** carrier: it is the
/// one `&mut` context already threaded through every search, so the
/// matcher accumulates how many candidate rows its delta probes actually
/// visited (vs. how many the probed operators' index rows hold in total)
/// without widening any search signature. The scheduler drains the
/// counters into its `RunReport` via [`MatchScratch::take_probe_counters`].
#[derive(Debug, Default)]
pub struct MatchScratch {
    rows: Vec<Vec<Option<Id>>>,
    lists: Vec<Vec<Vec<Option<Id>>>>,
    /// Candidate classes enumerated by delta probes since the last drain.
    probed_rows: usize,
    /// Candidate classes delta probes did *not* have to visit: the probed
    /// operators' remaining index-row entries, whose rows were quiet.
    skipped_rows: usize,
}

impl MatchScratch {
    /// An empty scratch arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one delta probe: `probed` candidates enumerated out of a
    /// `universe` of classes the probed operator's index row holds (all
    /// classes, for a variable-rooted probe).
    pub(crate) fn record_probe(&mut self, probed: usize, universe: usize) {
        self.probed_rows += probed;
        self.skipped_rows += universe.saturating_sub(probed);
    }

    /// Returns `(probed, skipped)` row counts accumulated by delta probes
    /// since the last call, resetting both.
    pub fn take_probe_counters(&mut self) -> (usize, usize) {
        let out = (self.probed_rows, self.skipped_rows);
        self.probed_rows = 0;
        self.skipped_rows = 0;
        out
    }

    /// A row initialized as a copy of `seed`.
    pub(crate) fn row_from(&mut self, seed: &[Option<Id>]) -> Vec<Option<Id>> {
        match self.rows.pop() {
            Some(mut row) => {
                row.clear();
                row.extend_from_slice(seed);
                row
            }
            None => seed.to_vec(),
        }
    }

    /// A row of `width` unbound slots.
    pub(crate) fn blank_row(&mut self, width: usize) -> Vec<Option<Id>> {
        match self.rows.pop() {
            Some(mut row) => {
                row.clear();
                row.resize(width, None);
                row
            }
            None => vec![None; width],
        }
    }

    /// Recycles a dead row.
    pub(crate) fn give_row(&mut self, row: Vec<Option<Id>>) {
        self.rows.push(row);
    }

    /// An empty row list.
    pub(crate) fn take_list(&mut self) -> Vec<Vec<Option<Id>>> {
        self.lists.pop().unwrap_or_default()
    }

    /// Recycles a row list, reclaiming any rows still inside it.
    pub(crate) fn give_list(&mut self, mut list: Vec<Vec<Option<Id>>>) {
        self.rows.append(&mut list);
        self.lists.push(list);
    }
}

/// A substitution from pattern variable names to e-class ids.
///
/// Internally: `vars` is the (shared, interned) slot→name table and
/// `bindings` the dense slot→id table. The string-keyed methods resolve
/// names by scanning `vars` — patterns bind a handful of variables, so a
/// linear scan beats hashing, and the hot matching paths never touch
/// strings at all (they go through slots).
#[derive(Debug, Clone, Default)]
pub struct Subst {
    vars: Arc<Vec<String>>,
    bindings: Vec<Option<Id>>,
}

impl Subst {
    /// Empty substitution.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A substitution over `vars` with the given slot bindings.
    pub(crate) fn from_bindings(vars: Arc<Vec<String>>, bindings: Vec<Option<Id>>) -> Self {
        debug_assert_eq!(vars.len(), bindings.len());
        Subst { vars, bindings }
    }

    fn slot_of(&self, var: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == var)
    }

    /// The id bound to `var`, if any.
    #[must_use]
    pub fn get(&self, var: &str) -> Option<Id> {
        self.slot_of(var).and_then(|s| self.bindings[s])
    }

    /// Binds `var` to `id`; returns false (leaving the subst unchanged) if
    /// `var` is already bound to a different id.
    pub fn bind(&mut self, var: &str, id: Id) -> bool {
        match self.slot_of(var) {
            Some(s) => match self.bindings[s] {
                Some(existing) => existing == id,
                None => {
                    self.bindings[s] = Some(id);
                    true
                }
            },
            None => {
                Arc::make_mut(&mut self.vars).push(var.to_string());
                self.bindings.push(Some(id));
                true
            }
        }
    }

    /// Iterates over bound `(name, id)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Id)> {
        self.vars
            .iter()
            .zip(self.bindings.iter())
            .filter_map(|(v, b)| b.as_ref().map(|id| (v, id)))
    }

    /// Number of bound variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bindings.iter().filter(|b| b.is_some()).count()
    }

    /// Whether no variables are bound.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sorted bound pairs — the semantic content of the substitution.
    fn sorted_pairs(&self) -> Vec<(&str, Id)> {
        let mut out: Vec<(&str, Id)> = self.iter().map(|(v, &id)| (v.as_str(), id)).collect();
        out.sort_unstable();
        out
    }
}

/// Substitutions compare by their bound `(name, id)` sets, regardless of
/// slot order or which matcher produced them.
impl PartialEq for Subst {
    fn eq(&self, other: &Self) -> bool {
        self.sorted_pairs() == other.sorted_pairs()
    }
}

impl Eq for Subst {}

/// A pattern over language `L`.
///
/// `Node(op, subpatterns)`: the `op`'s own child ids are placeholders and
/// ignored; only its operator/payload is compared (via
/// [`Language::matches_op`]). The real children are the subpatterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern<L> {
    /// A hole, matching any e-class and binding it to a name.
    Var(String),
    /// An operator application.
    Node(L, Vec<Pattern<L>>),
}

/// A pattern compiled for the indexed matcher: variables interned to slots
/// in a shared table, the root operator's index key precomputed.
#[derive(Debug, Clone)]
pub struct CompiledPattern<L> {
    pub(crate) node: CompiledNode<L>,
    pub(crate) vars: Arc<Vec<String>>,
}

/// Compiled pattern body; mirrors [`Pattern`] with slot-interned variables.
#[derive(Debug, Clone)]
pub(crate) enum CompiledNode<L> {
    Var(u32),
    Node {
        op: L,
        op_key: u64,
        children: Vec<CompiledNode<L>>,
    },
}

impl<L: Language> CompiledNode<L> {
    /// The operator-index key of the root, or `None` for variable roots
    /// (which match every class and cannot use the index).
    pub(crate) fn root_key(&self) -> Option<u64> {
        match self {
            CompiledNode::Var(_) => None,
            CompiledNode::Node { op_key, .. } => Some(*op_key),
        }
    }

    /// Matches against class `id`, appending every consistent extension of
    /// `seed` to `out`. Bindings are dense slot tables over the pattern's
    /// variable table; every row comes from (and dead rows return to) the
    /// `scratch` arena.
    pub(crate) fn match_class<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        id: Id,
        seed: &[Option<Id>],
        out: &mut Vec<Vec<Option<Id>>>,
        scratch: &mut MatchScratch,
    ) {
        let id = egraph.find(id);
        match self {
            CompiledNode::Var(slot) => {
                let slot = *slot as usize;
                match seed[slot] {
                    Some(existing) => {
                        if existing == id {
                            out.push(scratch.row_from(seed));
                        }
                    }
                    None => {
                        let mut next = scratch.row_from(seed);
                        next[slot] = Some(id);
                        out.push(next);
                    }
                }
            }
            CompiledNode::Node { op, children, .. } => {
                let mut partial = scratch.take_list();
                let mut step = scratch.take_list();
                for node in &egraph.class(id).nodes {
                    if !node.matches_op(op) || node.children().len() != children.len() {
                        continue;
                    }
                    partial.push(scratch.row_from(seed));
                    for (child_pat, &child_id) in children.iter().zip(node.children()) {
                        for s in partial.drain(..) {
                            child_pat.match_class(egraph, child_id, &s, &mut step, scratch);
                            scratch.give_row(s);
                        }
                        std::mem::swap(&mut partial, &mut step);
                        if partial.is_empty() {
                            break;
                        }
                    }
                    out.append(&mut partial);
                }
                scratch.give_list(partial);
                scratch.give_list(step);
            }
        }
    }
}

impl<L: Language> CompiledPattern<L> {
    /// Number of variable slots.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Matches against e-class `id` starting from an empty substitution.
    #[must_use]
    pub fn search_class<N: Analysis<L>>(&self, egraph: &EGraph<L, N>, id: Id) -> Vec<Subst> {
        self.search_class_with(egraph, id, &mut MatchScratch::new())
    }

    /// [`CompiledPattern::search_class`] with a caller-provided scratch
    /// arena (reuse it across calls to avoid re-allocating match buffers).
    #[must_use]
    pub fn search_class_with<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        id: Id,
        scratch: &mut MatchScratch,
    ) -> Vec<Subst> {
        debug_assert!(egraph.is_clean(), "search requires a rebuilt e-graph");
        let seed = scratch.blank_row(self.vars.len());
        let mut raw = Vec::new();
        self.node.match_class(egraph, id, &seed, &mut raw, scratch);
        scratch.give_row(seed);
        raw.into_iter()
            .map(|b| Subst::from_bindings(Arc::clone(&self.vars), b))
            .collect()
    }

    /// Searches the whole graph through the operator index; returns
    /// `(root_id, subst)` pairs. Same match set as [`Pattern::search`].
    #[must_use]
    pub fn search<N: Analysis<L>>(&self, egraph: &EGraph<L, N>) -> Vec<(Id, Subst)> {
        self.search_with(egraph, &mut MatchScratch::new())
    }

    /// [`CompiledPattern::search`] with a caller-provided scratch arena.
    #[must_use]
    pub fn search_with<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        scratch: &mut MatchScratch,
    ) -> Vec<(Id, Subst)> {
        debug_assert!(egraph.is_clean(), "search requires a rebuilt e-graph");
        let seed = scratch.blank_row(self.vars.len());
        let mut out = Vec::new();
        let mut raw = Vec::new();
        let visit = |id: Id,
                     raw: &mut Vec<Vec<Option<Id>>>,
                     out: &mut Vec<(Id, Subst)>,
                     scratch: &mut MatchScratch| {
            raw.clear();
            self.node.match_class(egraph, id, &seed, raw, scratch);
            for b in raw.drain(..) {
                out.push((id, Subst::from_bindings(Arc::clone(&self.vars), b)));
            }
        };
        match self.node.root_key() {
            Some(key) => {
                for &id in egraph.candidates_for(key) {
                    visit(id, &mut raw, &mut out, scratch);
                }
            }
            None => {
                let mut ids: Vec<Id> = egraph.classes().map(|c| c.id).collect();
                ids.sort_unstable();
                for id in ids {
                    visit(id, &mut raw, &mut out, scratch);
                }
            }
        }
        scratch.give_row(seed);
        out
    }
}

impl<L: Language> Pattern<L> {
    /// A variable pattern.
    #[must_use]
    pub fn var(name: &str) -> Self {
        Pattern::Var(name.to_string())
    }

    /// All variable names in the pattern.
    #[must_use]
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Pattern::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Pattern::Node(_, children) => {
                for c in children {
                    c.collect_vars(out);
                }
            }
        }
    }

    /// Interns a variable into `vars`, returning its slot. Shared with
    /// `Query::compile` so pattern and query interning cannot diverge.
    pub(crate) fn intern(vars: &mut Vec<String>, name: &str) -> u32 {
        let slot = match vars.iter().position(|v| v == name) {
            Some(s) => s,
            None => {
                vars.push(name.to_string());
                vars.len() - 1
            }
        };
        u32::try_from(slot).expect("pattern variable slot overflow")
    }

    /// Compiles the body against a shared variable table (used by queries
    /// whose atoms share bindings).
    pub(crate) fn compile_into(&self, vars: &mut Vec<String>) -> CompiledNode<L> {
        match self {
            Pattern::Var(v) => CompiledNode::Var(Self::intern(vars, v)),
            Pattern::Node(op, children) => CompiledNode::Node {
                op: op.clone(),
                op_key: op.op_key(),
                children: children.iter().map(|c| c.compile_into(vars)).collect(),
            },
        }
    }

    /// Compiles the pattern for the indexed matcher. Compile once, search
    /// many times.
    #[must_use]
    pub fn compile(&self) -> CompiledPattern<L> {
        let mut vars = Vec::new();
        let node = self.compile_into(&mut vars);
        CompiledPattern {
            node,
            vars: Arc::new(vars),
        }
    }

    /// Matches the pattern against e-class `id`, extending `subst`.
    /// Returns every consistent extension.
    ///
    /// This is the **naive reference matcher** — kept byte-for-byte
    /// equivalent in observable behavior to the compiled path so the two
    /// can be cross-checked; use [`Pattern::compile`] on hot paths.
    #[must_use]
    pub fn search_class<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        id: Id,
        subst: &Subst,
    ) -> Vec<Subst> {
        debug_assert!(egraph.is_clean(), "search requires a rebuilt e-graph");
        let id = egraph.find(id);
        match self {
            Pattern::Var(v) => {
                let mut s = subst.clone();
                if s.bind(v, id) {
                    vec![s]
                } else {
                    Vec::new()
                }
            }
            Pattern::Node(op, children) => {
                let mut results = Vec::new();
                for node in &egraph.class(id).nodes {
                    if !node.matches_op(op) || node.children().len() != children.len() {
                        continue;
                    }
                    let mut partial = vec![subst.clone()];
                    for (child_pat, &child_id) in children.iter().zip(node.children()) {
                        let mut next = Vec::new();
                        for s in &partial {
                            next.extend(child_pat.search_class(egraph, child_id, s));
                        }
                        partial = next;
                        if partial.is_empty() {
                            break;
                        }
                    }
                    results.extend(partial);
                }
                results
            }
        }
    }

    /// Searches every class in the graph; returns `(root_id, subst)` pairs.
    ///
    /// Naive reference path: iterates all classes. The compiled equivalent
    /// is [`CompiledPattern::search`].
    #[must_use]
    pub fn search<N: Analysis<L>>(&self, egraph: &EGraph<L, N>) -> Vec<(Id, Subst)> {
        let mut out = Vec::new();
        let mut ids: Vec<Id> = egraph.classes().map(|c| c.id).collect();
        ids.sort_unstable();
        for id in ids {
            for s in self.search_class(egraph, id, &Subst::new()) {
                out.push((id, s));
            }
        }
        out
    }

    /// Instantiates the pattern in the e-graph under `subst`.
    ///
    /// # Panics
    ///
    /// Panics if a pattern variable is unbound.
    pub fn instantiate<N: Analysis<L>>(&self, egraph: &mut EGraph<L, N>, subst: &Subst) -> Id {
        match self {
            Pattern::Var(v) => subst
                .get(v)
                .unwrap_or_else(|| panic!("unbound pattern variable ?{v}")),
            Pattern::Node(op, children) => {
                let child_ids: Vec<Id> = children
                    .iter()
                    .map(|c| c.instantiate(egraph, subst))
                    .collect();
                let mut k = 0;
                let node = op.map_children(|_| {
                    let id = child_ids[k];
                    k += 1;
                    id
                });
                egraph.add(node)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math_lang::{n, pvar, Math};

    fn p_mul(a: Pattern<Math>, b: Pattern<Math>) -> Pattern<Math> {
        Pattern::Node(Math::Mul([Id(0), Id(0)]), vec![a, b])
    }

    #[test]
    fn match_simple_node() {
        let mut eg = EGraph::<Math>::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let pat = p_mul(pvar("x"), pvar("y"));
        let matches = pat.search_class(&eg, m, &Subst::new());
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].get("x"), Some(a));
        assert_eq!(matches[0].get("y"), Some(two));
    }

    #[test]
    fn nonlinear_patterns_require_equal_classes() {
        let mut eg = EGraph::<Math>::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let m_ab = eg.add(Math::Mul([a, b]));
        let m_aa = eg.add(Math::Mul([a, a]));
        let square = p_mul(pvar("x"), pvar("x"));
        assert!(square.search_class(&eg, m_ab, &Subst::new()).is_empty());
        assert_eq!(square.search_class(&eg, m_aa, &Subst::new()).len(), 1);
    }

    #[test]
    fn literal_payloads_must_match() {
        let mut eg = EGraph::<Math>::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let pat2 = p_mul(pvar("x"), n(2));
        let pat3 = p_mul(pvar("x"), n(3));
        assert_eq!(pat2.search_class(&eg, m, &Subst::new()).len(), 1);
        assert!(pat3.search_class(&eg, m, &Subst::new()).is_empty());
    }

    #[test]
    fn search_whole_graph() {
        let mut eg = EGraph::<Math>::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let two = eg.add(Math::Num(2));
        let _m1 = eg.add(Math::Mul([a, two]));
        let _m2 = eg.add(Math::Mul([b, two]));
        let pat = p_mul(pvar("x"), n(2));
        assert_eq!(pat.search(&eg).len(), 2);
    }

    #[test]
    fn matches_through_unions() {
        // After a ≡ (a*2)/2, the pattern (?x * 2) matches inside the class.
        let mut eg = EGraph::<Math>::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let d = eg.add(Math::Div([m, two]));
        eg.union(a, d);
        eg.rebuild();
        let pat = Pattern::Node(
            Math::Div([Id(0), Id(0)]),
            vec![p_mul(pvar("x"), n(2)), n(2)],
        );
        let found = pat.search_class(&eg, a, &Subst::new());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].get("x"), Some(eg.find(a)));
    }

    #[test]
    fn instantiate_builds_terms() {
        let mut eg = EGraph::<Math>::new();
        let a = eg.add(Math::Sym("a".into()));
        let mut s = Subst::new();
        assert!(s.bind("x", a));
        let pat = p_mul(pvar("x"), n(1));
        let id = pat.instantiate(&mut eg, &s);
        assert!(eg.lookup(&Math::Num(1)).is_some());
        let term = eg.any_term(id).unwrap();
        assert_eq!(term.to_sexp(), "(* a 1)");
    }

    #[test]
    fn vars_are_collected_in_order() {
        let pat = p_mul(pvar("x"), p_mul(pvar("y"), pvar("x")));
        assert_eq!(pat.vars(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn subst_bind_conflicts() {
        let mut s = Subst::new();
        assert!(s.bind("x", Id(1)));
        assert!(s.bind("x", Id(1)));
        assert!(!s.bind("x", Id(2)));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn compiled_matches_agree_with_naive() {
        let mut eg = EGraph::<Math>::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let two = eg.add(Math::Num(2));
        let _m1 = eg.add(Math::Mul([a, two]));
        let _m2 = eg.add(Math::Mul([b, two]));
        let _m3 = eg.add(Math::Mul([a, a]));
        for pat in [
            p_mul(pvar("x"), n(2)),
            p_mul(pvar("x"), pvar("x")),
            p_mul(pvar("x"), pvar("y")),
            pvar("e"),
        ] {
            let naive: Vec<(Id, Subst)> = pat.search(&eg);
            let compiled = pat.compile().search(&eg);
            assert_eq!(naive.len(), compiled.len(), "pattern {pat:?}");
            for m in &naive {
                assert!(compiled.contains(m), "missing {m:?} for {pat:?}");
            }
        }
    }

    #[test]
    fn compiled_subst_keeps_string_api() {
        let mut eg = EGraph::<Math>::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let compiled = p_mul(pvar("x"), pvar("y")).compile();
        let matches = compiled.search_class(&eg, m);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].get("x"), Some(a));
        assert_eq!(matches[0].get("y"), Some(two));
        // Appliers can keep binding new names through the shim.
        let mut s = matches[0].clone();
        assert!(s.bind("fresh", m));
        assert_eq!(s.get("fresh"), Some(m));
    }
}
