//! Patterns and e-matching.
//!
//! A [`Pattern`] is a term with named holes. [`Pattern::search_class`]
//! enumerates all substitutions under which the pattern matches some term
//! represented by an e-class.

use std::collections::HashMap;

use crate::egraph::{Analysis, EGraph};
use crate::language::Language;
use crate::unionfind::Id;

/// A substitution from pattern variable names to e-class ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Subst {
    map: HashMap<String, Id>,
}

impl Subst {
    /// Empty substitution.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The id bound to `var`, if any.
    #[must_use]
    pub fn get(&self, var: &str) -> Option<Id> {
        self.map.get(var).copied()
    }

    /// Binds `var` to `id`; returns false (leaving the subst unchanged) if
    /// `var` is already bound to a different id.
    pub fn bind(&mut self, var: &str, id: Id) -> bool {
        match self.map.get(var) {
            Some(&existing) => existing == id,
            None => {
                self.map.insert(var.to_string(), id);
                true
            }
        }
    }

    /// Iterates over bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Id)> {
        self.map.iter()
    }

    /// Number of bound variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variables are bound.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A pattern over language `L`.
///
/// `Node(op, subpatterns)`: the `op`'s own child ids are placeholders and
/// ignored; only its operator/payload is compared (via
/// [`Language::matches_op`]). The real children are the subpatterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern<L> {
    /// A hole, matching any e-class and binding it to a name.
    Var(String),
    /// An operator application.
    Node(L, Vec<Pattern<L>>),
}

impl<L: Language> Pattern<L> {
    /// A variable pattern.
    #[must_use]
    pub fn var(name: &str) -> Self {
        Pattern::Var(name.to_string())
    }

    /// All variable names in the pattern.
    #[must_use]
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Pattern::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Pattern::Node(_, children) => {
                for c in children {
                    c.collect_vars(out);
                }
            }
        }
    }

    /// Matches the pattern against e-class `id`, extending `subst`.
    /// Returns every consistent extension.
    #[must_use]
    pub fn search_class<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        id: Id,
        subst: &Subst,
    ) -> Vec<Subst> {
        debug_assert!(egraph.is_clean(), "search requires a rebuilt e-graph");
        let id = egraph.find(id);
        match self {
            Pattern::Var(v) => {
                let mut s = subst.clone();
                if s.bind(v, id) {
                    vec![s]
                } else {
                    Vec::new()
                }
            }
            Pattern::Node(op, children) => {
                let mut results = Vec::new();
                for node in &egraph.class(id).nodes {
                    if !node.matches_op(op) || node.children().len() != children.len() {
                        continue;
                    }
                    let mut partial = vec![subst.clone()];
                    for (child_pat, &child_id) in children.iter().zip(node.children()) {
                        let mut next = Vec::new();
                        for s in &partial {
                            next.extend(child_pat.search_class(egraph, child_id, s));
                        }
                        partial = next;
                        if partial.is_empty() {
                            break;
                        }
                    }
                    results.extend(partial);
                }
                results
            }
        }
    }

    /// Searches every class in the graph; returns `(root_id, subst)` pairs.
    #[must_use]
    pub fn search<N: Analysis<L>>(&self, egraph: &EGraph<L, N>) -> Vec<(Id, Subst)> {
        let mut out = Vec::new();
        for class in egraph.classes() {
            for s in self.search_class(egraph, class.id, &Subst::new()) {
                out.push((class.id, s));
            }
        }
        out
    }

    /// Instantiates the pattern in the e-graph under `subst`.
    ///
    /// # Panics
    ///
    /// Panics if a pattern variable is unbound.
    pub fn instantiate<N: Analysis<L>>(&self, egraph: &mut EGraph<L, N>, subst: &Subst) -> Id {
        match self {
            Pattern::Var(v) => subst
                .get(v)
                .unwrap_or_else(|| panic!("unbound pattern variable ?{v}")),
            Pattern::Node(op, children) => {
                let child_ids: Vec<Id> = children
                    .iter()
                    .map(|c| c.instantiate(egraph, subst))
                    .collect();
                let mut k = 0;
                let node = op.map_children(|_| {
                    let id = child_ids[k];
                    k += 1;
                    id
                });
                egraph.add(node)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math_lang::{n, pvar, Math};

    fn p_mul(a: Pattern<Math>, b: Pattern<Math>) -> Pattern<Math> {
        Pattern::Node(Math::Mul([Id(0), Id(0)]), vec![a, b])
    }

    #[test]
    fn match_simple_node() {
        let mut eg = EGraph::<Math>::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let pat = p_mul(pvar("x"), pvar("y"));
        let matches = pat.search_class(&eg, m, &Subst::new());
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].get("x"), Some(a));
        assert_eq!(matches[0].get("y"), Some(two));
    }

    #[test]
    fn nonlinear_patterns_require_equal_classes() {
        let mut eg = EGraph::<Math>::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let m_ab = eg.add(Math::Mul([a, b]));
        let m_aa = eg.add(Math::Mul([a, a]));
        let square = p_mul(pvar("x"), pvar("x"));
        assert!(square.search_class(&eg, m_ab, &Subst::new()).is_empty());
        assert_eq!(square.search_class(&eg, m_aa, &Subst::new()).len(), 1);
    }

    #[test]
    fn literal_payloads_must_match() {
        let mut eg = EGraph::<Math>::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let pat2 = p_mul(pvar("x"), n(2));
        let pat3 = p_mul(pvar("x"), n(3));
        assert_eq!(pat2.search_class(&eg, m, &Subst::new()).len(), 1);
        assert!(pat3.search_class(&eg, m, &Subst::new()).is_empty());
    }

    #[test]
    fn search_whole_graph() {
        let mut eg = EGraph::<Math>::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let two = eg.add(Math::Num(2));
        let _m1 = eg.add(Math::Mul([a, two]));
        let _m2 = eg.add(Math::Mul([b, two]));
        let pat = p_mul(pvar("x"), n(2));
        assert_eq!(pat.search(&eg).len(), 2);
    }

    #[test]
    fn matches_through_unions() {
        // After a ≡ (a*2)/2, the pattern (?x * 2) matches inside the class.
        let mut eg = EGraph::<Math>::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let d = eg.add(Math::Div([m, two]));
        eg.union(a, d);
        eg.rebuild();
        let pat = Pattern::Node(
            Math::Div([Id(0), Id(0)]),
            vec![p_mul(pvar("x"), n(2)), n(2)],
        );
        let found = pat.search_class(&eg, a, &Subst::new());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].get("x"), Some(eg.find(a)));
    }

    #[test]
    fn instantiate_builds_terms() {
        let mut eg = EGraph::<Math>::new();
        let a = eg.add(Math::Sym("a".into()));
        let mut s = Subst::new();
        assert!(s.bind("x", a));
        let pat = p_mul(pvar("x"), n(1));
        let id = pat.instantiate(&mut eg, &s);
        assert!(eg.lookup(&Math::Num(1)).is_some());
        let term = eg.any_term(id).unwrap();
        assert_eq!(term.to_sexp(), "(* a 1)");
    }

    #[test]
    fn vars_are_collected_in_order() {
        let pat = p_mul(pvar("x"), p_mul(pvar("y"), pvar("x")));
        assert_eq!(pat.vars(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn subst_bind_conflicts() {
        let mut s = Subst::new();
        assert!(s.bind("x", Id(1)));
        assert!(s.bind("x", Id(1)));
        assert!(!s.bind("x", Id(2)));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }
}
