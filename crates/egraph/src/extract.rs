//! Cost-based extraction of the optimal term from an e-graph.
//!
//! The paper's cost model (§III-D3) is AST size — instruction selection under
//! a user-given schedule is "hit or miss", so smaller terms (which use the
//! coarse accelerator intrinsics) always win. The extractor is nonetheless
//! generic over a [`CostFunction`].

use std::collections::{HashMap, HashSet, VecDeque};

use crate::egraph::{Analysis, EGraph};
use crate::language::{Language, RecExpr};
use crate::unionfind::Id;

/// Assigns a cost to an e-node given the best costs of its children.
pub trait CostFunction<L: Language> {
    /// Cost of `node`; `child_cost(id)` is the best known cost of a child
    /// class (saturating arithmetic recommended).
    fn cost(&self, node: &L, child_cost: &mut dyn FnMut(Id) -> u64) -> u64;
}

/// AST size: every node costs 1 plus its children.
#[derive(Debug, Clone, Copy, Default)]
pub struct AstSize;

impl<L: Language> CostFunction<L> for AstSize {
    fn cost(&self, node: &L, child_cost: &mut dyn FnMut(Id) -> u64) -> u64 {
        let mut total: u64 = 1;
        for &c in node.children() {
            total = total.saturating_add(child_cost(c));
        }
        total
    }
}

/// Cost function defined by a closure over the node's op with child costs
/// pre-summed — handy for weighting specific operators.
pub struct FnCost<F>(pub F);

impl<L: Language, F: Fn(&L) -> u64> CostFunction<L> for FnCost<F> {
    fn cost(&self, node: &L, child_cost: &mut dyn FnMut(Id) -> u64) -> u64 {
        let mut total = (self.0)(node);
        for &c in node.children() {
            total = total.saturating_add(child_cost(c));
        }
        total
    }
}

/// Bottom-up extractor: computes, for every class, the cheapest constructible
/// node, then reads out the best term for any root.
///
/// Cost solving is worklist-driven: a class is (re)evaluated only when one
/// of its children's best costs improves, and improvements propagate along
/// the e-graph's parent edges. Leaves settle first, then their parents —
/// the classic egg algorithm — instead of repeated full passes to a
/// fixpoint, which re-scanned every class per improvement wave.
///
/// Equal-cost ties are broken by **content**, not by e-class ids: after the
/// cost table settles, a canonicalization pass re-picks each class's
/// representative as the minimum-cost node with the smallest
/// `(op_key, children…)` term ([`Language::op_key`] digests only the
/// operator and payload), comparing children recursively by their (already
/// canonical) representatives. Two e-graphs holding the same equivalences
/// therefore extract the *same term* regardless of how their ids were
/// assigned — which is what lets batched/shared-graph users (and re-runs)
/// get byte-identical output.
pub struct Extractor<'a, L: Language, N: Analysis<L>, C: CostFunction<L>> {
    egraph: &'a EGraph<L, N>,
    cost_fn: C,
    best: HashMap<Id, (u64, L)>,
}

impl<'a, L: Language, N: Analysis<L>, C: CostFunction<L>> Extractor<'a, L, N, C> {
    /// Builds the cost table (worklist propagation over classes).
    #[must_use]
    pub fn new(egraph: &'a EGraph<L, N>, cost_fn: C) -> Self {
        let mut ex = Extractor {
            egraph,
            cost_fn,
            best: HashMap::new(),
        };
        ex.solve();
        ex.canonicalize_ties();
        ex
    }

    /// The best (cost, node) for one class under the current table: the
    /// *first* minimum-cost feasible node in the class's (sorted) node
    /// list. Depending only on the table contents — never on visit order —
    /// keeps equal-cost tie-breaks deterministic across runs.
    fn best_of(&self, id: Id) -> Option<(u64, L)> {
        let class = self.egraph.class(id);
        let mut winner: Option<(u64, L)> = None;
        for node in &class.nodes {
            let mut feasible = true;
            let best = &self.best;
            let cost = self.cost_fn.cost(node, &mut |cid| {
                let cid = self.egraph.find(cid);
                match best.get(&cid) {
                    Some((c, _)) => *c,
                    None => {
                        feasible = false;
                        u64::MAX / 4
                    }
                }
            });
            if !feasible {
                continue;
            }
            if winner.as_ref().is_none_or(|(w, _)| cost < *w) {
                winner = Some((cost, node.clone()));
            }
        }
        winner
    }

    fn solve(&mut self) {
        // Parent index over canonical ids: child class -> classes holding a
        // node with that child (the edges improvements propagate along).
        let mut parents: HashMap<Id, Vec<Id>> = HashMap::new();
        for class in self.egraph.classes() {
            let cid = self.egraph.find(class.id);
            for node in &class.nodes {
                for &child in node.children() {
                    parents
                        .entry(self.egraph.find(child))
                        .or_default()
                        .push(cid);
                }
            }
        }
        for row in parents.values_mut() {
            row.sort_unstable();
            row.dedup();
        }
        let mut queue: VecDeque<Id> = self.egraph.classes().map(|c| c.id).collect();
        queue.make_contiguous().sort_unstable();
        let mut queued: HashSet<Id> = queue.iter().copied().collect();
        while let Some(id) = queue.pop_front() {
            queued.remove(&id);
            let Some((cost, node)) = self.best_of(id) else {
                continue;
            };
            match self.best.get(&id) {
                // Cost unchanged: keep the canonical (first-in-node-list)
                // winner but don't re-propagate.
                Some((old, old_node)) if *old == cost => {
                    if *old_node != node {
                        self.best.insert(id, (cost, node));
                    }
                }
                Some((old, _)) if *old < cost => {}
                _ => {
                    self.best.insert(id, (cost, node));
                    for &parent in parents.get(&id).map(Vec::as_slice).unwrap_or_default() {
                        if queued.insert(parent) {
                            queue.push_back(parent);
                        }
                    }
                }
            }
        }
    }

    /// Cost of one node under the settled table, or `None` if a child has
    /// no constructible term.
    fn node_cost(&self, node: &L) -> Option<u64> {
        let mut feasible = true;
        let best = &self.best;
        let egraph = self.egraph;
        let cost = self
            .cost_fn
            .cost(node, &mut |cid| match best.get(&egraph.find(cid)) {
                Some((c, _)) => *c,
                None => {
                    feasible = false;
                    u64::MAX / 4
                }
            });
        feasible.then_some(cost)
    }

    /// Re-picks each class's representative among its minimum-cost nodes by
    /// content order (see the type docs). Classes are finalized in
    /// ascending cost order: any cost function whose nodes cost strictly
    /// more than their children (true of [`AstSize`] and everything built
    /// on additive positive weights) then guarantees a node's children are
    /// already final when the node is compared.
    fn canonicalize_ties(&mut self) {
        let mut order: Vec<(u64, Id)> = self.best.iter().map(|(&id, &(c, _))| (c, id)).collect();
        order.sort_unstable();
        // Class-vs-class orderings recur under every tied parent; memoize
        // them across the pass.
        let mut memo: HashMap<(Id, Id), std::cmp::Ordering> = HashMap::new();
        for (cost, id) in order {
            let class = self.egraph.class(id);
            if class.nodes.len() <= 1 {
                continue; // nothing to tie-break, table entry is already it
            }
            let mut winner: Option<L> = None;
            for node in &class.nodes {
                if self.node_cost(node) != Some(cost) {
                    continue;
                }
                // The determinism argument needs strict monotonicity: a
                // min-cost node's children must already be finalized, i.e.
                // strictly cheaper than this class. Nodes violating it
                // (possible only under non-monotone cost functions, e.g.
                // zero own-cost nodes — where a node can even be its own
                // descendant) are skipped so the pass never installs a
                // representative extraction could cycle through; if no
                // node qualifies, the solve() winner stands.
                if !node.children().iter().all(|&c| {
                    self.best
                        .get(&self.egraph.find(c))
                        .is_some_and(|(child_cost, _)| *child_cost < cost)
                }) {
                    continue;
                }
                let better = match &winner {
                    None => true,
                    Some(w) => self.cmp_nodes(node, w, cost, &mut memo) == std::cmp::Ordering::Less,
                };
                if better {
                    winner = Some(node.clone());
                }
            }
            if let Some(node) = winner {
                self.best.insert(id, (cost, node));
            }
        }
    }

    /// Content order on two nodes of the same class (or of classes already
    /// compared equal): operator key (a content-only payload digest —
    /// deterministic across graphs, unlike e-class ids), then arity, then
    /// children pairwise by their canonical representatives. `limit` is
    /// the cost of the class the nodes belong to; comparisons only descend
    /// into strictly cheaper classes (see [`Extractor::cmp_classes`]).
    fn cmp_nodes(
        &self,
        a: &L,
        b: &L,
        limit: u64,
        memo: &mut HashMap<(Id, Id), std::cmp::Ordering>,
    ) -> std::cmp::Ordering {
        a.op_key()
            .cmp(&b.op_key())
            .then(a.children().len().cmp(&b.children().len()))
            .then_with(|| {
                for (&ca, &cb) in a.children().iter().zip(b.children()) {
                    let ord = self.cmp_classes(ca, cb, limit, memo);
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            })
    }

    /// Content order on two classes: best cost first, then the canonical
    /// representatives recursively. Descent is gated on the classes being
    /// strictly cheaper than `limit` (the cost of the class whose nodes
    /// are being compared), so every recursion strictly decreases the
    /// cost and terminates even under a non-monotone cost function —
    /// where a solve()-installed representative may reference equal-cost
    /// classes cyclically. Under such functions equal-cost chains compare
    /// `Equal` here (no content guarantee, which is documented to require
    /// monotonicity); under monotone ones the gate never triggers.
    fn cmp_classes(
        &self,
        a: Id,
        b: Id,
        limit: u64,
        memo: &mut HashMap<(Id, Id), std::cmp::Ordering>,
    ) -> std::cmp::Ordering {
        let a = self.egraph.find(a);
        let b = self.egraph.find(b);
        if a == b {
            return std::cmp::Ordering::Equal;
        }
        if let Some(&ord) = memo.get(&(a, b)) {
            return ord;
        }
        let ord = match (self.best.get(&a), self.best.get(&b)) {
            (Some((ca, na)), Some((cb, nb))) => ca.cmp(cb).then_with(|| {
                if *ca >= limit {
                    std::cmp::Ordering::Equal
                } else {
                    self.cmp_nodes(na, nb, *ca, memo)
                }
            }),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => std::cmp::Ordering::Equal,
        };
        memo.insert((a, b), ord);
        memo.insert((b, a), ord.reverse());
        ord
    }

    /// Best cost for a class, if any term is constructible.
    #[must_use]
    pub fn cost_of(&self, id: Id) -> Option<u64> {
        self.best.get(&self.egraph.find(id)).map(|(c, _)| *c)
    }

    /// Extracts the best term rooted at `id`.
    ///
    /// # Panics
    ///
    /// Panics if the class has no constructible term (cyclic-only class).
    #[must_use]
    pub fn extract(&self, id: Id) -> RecExpr<L> {
        let mut out = RecExpr::new();
        let mut cache: HashMap<Id, Id> = HashMap::new();
        let root = self.extract_into(id, &mut out, &mut cache);
        debug_assert_eq!(root, out.root_id());
        out
    }

    fn extract_into(&self, id: Id, out: &mut RecExpr<L>, cache: &mut HashMap<Id, Id>) -> Id {
        let id = self.egraph.find(id);
        if let Some(&done) = cache.get(&id) {
            // Re-add the cached subtree's root? RecExpr is append-only, and
            // children must reference earlier nodes, so a cached index stays
            // valid.
            return done;
        }
        let (_, node) = self
            .best
            .get(&id)
            .unwrap_or_else(|| panic!("no constructible term for {id}"));
        let child_ids: Vec<Id> = node
            .children()
            .iter()
            .map(|&c| self.extract_into(c, out, cache))
            .collect();
        let mut k = 0;
        let remapped = node.map_children(|_| {
            let cid = child_ids[k];
            k += 1;
            cid
        });
        let new_id = out.add(remapped);
        cache.insert(id, new_id);
        new_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math_lang::{n, pdiv, pmul, pvar, Math};
    use crate::rewrite::Rewrite;
    use crate::schedule::Runner;

    type EG = EGraph<Math, ()>;

    #[test]
    fn extracts_smallest_term_after_saturation() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let d = eg.add(Math::Div([m, two]));
        let rules = vec![
            Rewrite::rewrite(
                "assoc",
                pdiv(pmul(pvar("a"), pvar("b")), pvar("c")),
                pmul(pvar("a"), pdiv(pvar("b"), pvar("c"))),
            ),
            Rewrite::rewrite("div-self", pdiv(n(2), n(2)), n(1)),
            Rewrite::rewrite("mul-one", pmul(pvar("a"), n(1)), pvar("a")),
        ];
        Runner::default().run_to_fixpoint(&mut eg, &rules);
        let ex = Extractor::new(&eg, AstSize);
        assert_eq!(ex.cost_of(d), Some(1));
        assert_eq!(ex.extract(d).to_sexp(), "a");
    }

    #[test]
    fn custom_costs_change_the_winner() {
        // mul is free, shl costs 10: prefer  a * 2  over  a << 1.
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let one = eg.add(Math::Num(1));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let s = eg.add(Math::Shl([a, one]));
        eg.union(m, s);
        eg.rebuild();
        let ex = Extractor::new(
            &eg,
            FnCost(|node: &Math| match node {
                Math::Shl(_) => 10,
                _ => 1,
            }),
        );
        assert_eq!(ex.extract(m).to_sexp(), "(* a 2)");
        // And the opposite weighting picks the shift.
        let ex2 = Extractor::new(
            &eg,
            FnCost(|node: &Math| match node {
                Math::Mul(_) => 10,
                _ => 1,
            }),
        );
        assert_eq!(ex2.extract(m).to_sexp(), "(<< a 1)");
    }

    #[test]
    fn shared_subterms_extract_once() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let d = eg.add(Math::Add([m, m]));
        let ex = Extractor::new(&eg, AstSize);
        let term = ex.extract(d);
        // a, 2, (* a 2), (+ ..): sharing keeps the node count at 4.
        assert_eq!(term.len(), 4);
        assert_eq!(term.to_sexp(), "(+ (* a 2) (* a 2))");
    }

    #[test]
    fn cyclic_classes_are_skipped() {
        // Create x = f(x) by unioning; extraction must still work via the
        // leaf member of the class.
        let mut eg = EG::new();
        let x = eg.add(Math::Sym("x".into()));
        let one = eg.add(Math::Num(1));
        let fx = eg.add(Math::Mul([x, one]));
        eg.union(x, fx);
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        assert_eq!(ex.extract(x).to_sexp(), "x");
    }
}
