//! Cost-based extraction of the optimal term from an e-graph — a pluggable
//! strategy API.
//!
//! The paper's cost model (§III-D3) is AST size — instruction selection under
//! a user-given schedule is "hit or miss", so smaller terms (which use the
//! coarse accelerator intrinsics) always win. Extraction is nonetheless
//! generic twice over: over a [`CostFunction`] (what a node costs) and over an
//! [`Extract`] strategy (how the e-graph is solved and read out). Three
//! strategies ship with the engine:
//!
//! * [`WorklistExtractor`] — the reference bottom-up tree-cost solver with
//!   content-deterministic tie-breaks. One cost table, per-root readouts that
//!   each re-walk the chosen sub-dag.
//! * [`SharedTableExtractor`] — the same cost table (identical choices,
//!   byte-identical terms), but readouts go through a shared **term bank**:
//!   the first root to touch a class materializes its chosen node once, and
//!   every later root — in a multi-root suite graph — copies it out of the
//!   bank instead of re-deriving it. This is the batched/suite mode's
//!   extractor: with hundreds of roots sharing one saturated graph, per-root
//!   readout cost drops to an arena copy.
//! * [`DagCostExtractor`] — a genuinely different cost *semantics*: shared
//!   subterms are charged **once** per readout dag rather than once per use,
//!   which models CSE-performing backends and flips winners on unrolled
//!   workloads where a slightly larger term with heavy internal sharing beats
//!   a smaller tree without it.
//!
//! All three implement the object-safe [`Extract`] trait (solve costs at
//! construction, then `cost_of`/`extract` readouts plus [`ExtractionStats`]
//! counters), which is what lets the selector treat the strategy as a
//! session-level plug-in.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};

use crate::egraph::{Analysis, EGraph};
use crate::language::{Language, RecExpr};
use crate::unionfind::Id;

/// Assigns a cost to an e-node given the best costs of its children.
pub trait CostFunction<L: Language> {
    /// Cost of `node`; `child_cost(id)` is the best known cost of a child
    /// class. Implementations must fold child costs with **saturating**
    /// arithmetic: the solver feeds `u64::MAX / 4` for not-yet-constructible
    /// children, and deep terms legitimately approach the integer range.
    fn cost(&self, node: &L, child_cost: &mut dyn FnMut(Id) -> u64) -> u64;
}

/// AST size: every node costs 1 plus its children (saturating).
#[derive(Debug, Clone, Copy, Default)]
pub struct AstSize;

impl<L: Language> CostFunction<L> for AstSize {
    fn cost(&self, node: &L, child_cost: &mut dyn FnMut(Id) -> u64) -> u64 {
        let mut total: u64 = 1;
        for &c in node.children() {
            total = total.saturating_add(child_cost(c));
        }
        total
    }
}

/// Cost function defined by a closure over the node's op with child costs
/// pre-summed (saturating) — handy for weighting specific operators.
pub struct FnCost<F>(pub F);

impl<L: Language, F: Fn(&L) -> u64> CostFunction<L> for FnCost<F> {
    fn cost(&self, node: &L, child_cost: &mut dyn FnMut(Id) -> u64) -> u64 {
        let mut total = (self.0)(node);
        for &c in node.children() {
            total = total.saturating_add(child_cost(c));
        }
        total
    }
}

/// Counters an extraction strategy reports about its own work, surfaced by
/// the selector's `ExtractionReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractionStats {
    /// Strategy name (`"worklist"`, `"shared-table"`, `"dag-cost"`).
    pub strategy: &'static str,
    /// Classes with a settled cost-table entry.
    pub table_entries: usize,
    /// Nodes materialized in the shared term bank (0 for strategies without
    /// one).
    pub bank_nodes: usize,
    /// Readout lookups served from sub-dags banked by *earlier* readouts —
    /// the cross-root reuse the shared-table strategy exists for.
    /// Intra-root sharing is excluded (any strategy's per-root cache
    /// already memoizes it).
    pub reused_readouts: usize,
}

/// An extraction strategy: costs are solved once at construction, then any
/// root can be priced ([`Extract::cost_of`]) or read out
/// ([`Extract::extract`]) against the settled solution.
///
/// Object-safe, so pipeline drivers can hold `Box<dyn Extract<L> + '_>` and
/// make the strategy a runtime plug-in.
pub trait Extract<L: Language> {
    /// Best cost for a class, if any term is constructible.
    fn cost_of(&self, id: Id) -> Option<u64>;

    /// Extracts the best term rooted at `id`.
    ///
    /// # Panics
    ///
    /// Panics if the class has no constructible term (cyclic-only class).
    fn extract(&self, id: Id) -> RecExpr<L>;

    /// Counters describing the work done so far (table size, bank reuse).
    fn stats(&self) -> ExtractionStats;
}

/// Bottom-up tree-cost extractor: computes, for every class, the cheapest
/// constructible node, then reads out the best term for any root.
///
/// Cost solving is worklist-driven: a class is (re)evaluated only when one
/// of its children's best costs improves, and improvements propagate along
/// the e-graph's parent edges. Leaves settle first, then their parents —
/// the classic egg algorithm — instead of repeated full passes to a
/// fixpoint, which re-scanned every class per improvement wave.
///
/// Equal-cost ties are broken by **content**, not by e-class ids: after the
/// cost table settles, a canonicalization pass re-picks each class's
/// representative as the minimum-cost node with the smallest
/// `(op_key, children…)` term ([`Language::op_key`] digests only the
/// operator and payload), comparing children recursively by their (already
/// canonical) representatives. Two e-graphs holding the same equivalences
/// therefore extract the *same term* regardless of how their ids were
/// assigned — which is what lets batched/shared-graph users (and re-runs)
/// get byte-identical output.
pub struct WorklistExtractor<'a, L: Language, N: Analysis<L>, C: CostFunction<L>> {
    egraph: &'a EGraph<L, N>,
    cost_fn: C,
    best: HashMap<Id, (u64, L)>,
}

/// The pre-strategy-API name of [`WorklistExtractor`].
#[deprecated(
    since = "0.3.0",
    note = "use WorklistExtractor (or another Extract strategy) directly"
)]
pub type Extractor<'a, L, N, C> = WorklistExtractor<'a, L, N, C>;

impl<'a, L: Language, N: Analysis<L>, C: CostFunction<L>> WorklistExtractor<'a, L, N, C> {
    /// Builds the cost table (worklist propagation over classes).
    #[must_use]
    pub fn new(egraph: &'a EGraph<L, N>, cost_fn: C) -> Self {
        let mut ex = WorklistExtractor {
            egraph,
            cost_fn,
            best: HashMap::new(),
        };
        ex.solve();
        ex.canonicalize_ties();
        ex
    }

    /// The best (cost, node) for one class under the current table: the
    /// *first* minimum-cost feasible node in the class's (sorted) node
    /// list. Depending only on the table contents — never on visit order —
    /// keeps equal-cost tie-breaks deterministic across runs.
    fn best_of(&self, id: Id) -> Option<(u64, L)> {
        let class = self.egraph.class(id);
        let mut winner: Option<(u64, L)> = None;
        for node in &class.nodes {
            let mut feasible = true;
            let best = &self.best;
            let cost = self.cost_fn.cost(node, &mut |cid| {
                let cid = self.egraph.find(cid);
                match best.get(&cid) {
                    Some((c, _)) => *c,
                    None => {
                        feasible = false;
                        u64::MAX / 4
                    }
                }
            });
            if !feasible {
                continue;
            }
            if winner.as_ref().is_none_or(|(w, _)| cost < *w) {
                winner = Some((cost, node.clone()));
            }
        }
        winner
    }

    fn solve(&mut self) {
        // Parent index over canonical ids: child class -> classes holding a
        // node with that child (the edges improvements propagate along).
        let mut parents: HashMap<Id, Vec<Id>> = HashMap::new();
        for class in self.egraph.classes() {
            let cid = self.egraph.find(class.id);
            for node in &class.nodes {
                for &child in node.children() {
                    parents
                        .entry(self.egraph.find(child))
                        .or_default()
                        .push(cid);
                }
            }
        }
        for row in parents.values_mut() {
            row.sort_unstable();
            row.dedup();
        }
        let mut queue: VecDeque<Id> = self.egraph.classes().map(|c| c.id).collect();
        queue.make_contiguous().sort_unstable();
        let mut queued: HashSet<Id> = queue.iter().copied().collect();
        while let Some(id) = queue.pop_front() {
            queued.remove(&id);
            let Some((cost, node)) = self.best_of(id) else {
                continue;
            };
            match self.best.get(&id) {
                // Cost unchanged: keep the canonical (first-in-node-list)
                // winner but don't re-propagate.
                Some((old, old_node)) if *old == cost => {
                    if *old_node != node {
                        self.best.insert(id, (cost, node));
                    }
                }
                Some((old, _)) if *old < cost => {}
                _ => {
                    self.best.insert(id, (cost, node));
                    for &parent in parents.get(&id).map(Vec::as_slice).unwrap_or_default() {
                        if queued.insert(parent) {
                            queue.push_back(parent);
                        }
                    }
                }
            }
        }
    }

    /// Cost of one node under the settled table, or `None` if a child has
    /// no constructible term.
    fn node_cost(&self, node: &L) -> Option<u64> {
        let mut feasible = true;
        let best = &self.best;
        let egraph = self.egraph;
        let cost = self
            .cost_fn
            .cost(node, &mut |cid| match best.get(&egraph.find(cid)) {
                Some((c, _)) => *c,
                None => {
                    feasible = false;
                    u64::MAX / 4
                }
            });
        feasible.then_some(cost)
    }

    /// Re-picks each class's representative among its minimum-cost nodes by
    /// content order (see the type docs). Classes are finalized in
    /// ascending cost order: any cost function whose nodes cost strictly
    /// more than their children (true of [`AstSize`] and everything built
    /// on additive positive weights) then guarantees a node's children are
    /// already final when the node is compared.
    fn canonicalize_ties(&mut self) {
        let mut order: Vec<(u64, Id)> = self.best.iter().map(|(&id, &(c, _))| (c, id)).collect();
        order.sort_unstable();
        // Class-vs-class orderings recur under every tied parent; memoize
        // them across the pass.
        let mut memo: HashMap<(Id, Id), std::cmp::Ordering> = HashMap::new();
        for (cost, id) in order {
            let class = self.egraph.class(id);
            if class.nodes.len() <= 1 {
                continue; // nothing to tie-break, table entry is already it
            }
            let mut winner: Option<L> = None;
            for node in &class.nodes {
                if self.node_cost(node) != Some(cost) {
                    continue;
                }
                // The determinism argument needs strict monotonicity: a
                // min-cost node's children must already be finalized, i.e.
                // strictly cheaper than this class. Nodes violating it
                // (possible only under non-monotone cost functions, e.g.
                // zero own-cost nodes — where a node can even be its own
                // descendant) are skipped so the pass never installs a
                // representative extraction could cycle through; if no
                // node qualifies, the solve() winner stands.
                if !node.children().iter().all(|&c| {
                    self.best
                        .get(&self.egraph.find(c))
                        .is_some_and(|(child_cost, _)| *child_cost < cost)
                }) {
                    continue;
                }
                let better = match &winner {
                    None => true,
                    Some(w) => self.cmp_nodes(node, w, cost, &mut memo) == std::cmp::Ordering::Less,
                };
                if better {
                    winner = Some(node.clone());
                }
            }
            if let Some(node) = winner {
                self.best.insert(id, (cost, node));
            }
        }
    }

    /// Content order on two nodes of the same class (or of classes already
    /// compared equal): operator key (a content-only payload digest —
    /// deterministic across graphs, unlike e-class ids), then arity, then
    /// children pairwise by their canonical representatives. `limit` is
    /// the cost of the class the nodes belong to; comparisons only descend
    /// into strictly cheaper classes (see [`WorklistExtractor::cmp_classes`]).
    fn cmp_nodes(
        &self,
        a: &L,
        b: &L,
        limit: u64,
        memo: &mut HashMap<(Id, Id), std::cmp::Ordering>,
    ) -> std::cmp::Ordering {
        a.op_key()
            .cmp(&b.op_key())
            .then(a.children().len().cmp(&b.children().len()))
            .then_with(|| {
                for (&ca, &cb) in a.children().iter().zip(b.children()) {
                    let ord = self.cmp_classes(ca, cb, limit, memo);
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            })
    }

    /// Content order on two classes: best cost first, then the canonical
    /// representatives recursively. Descent is gated on the classes being
    /// strictly cheaper than `limit` (the cost of the class whose nodes
    /// are being compared), so every recursion strictly decreases the
    /// cost and terminates even under a non-monotone cost function —
    /// where a solve()-installed representative may reference equal-cost
    /// classes cyclically. Under such functions equal-cost chains compare
    /// `Equal` here (no content guarantee, which is documented to require
    /// monotonicity); under monotone ones the gate never triggers.
    fn cmp_classes(
        &self,
        a: Id,
        b: Id,
        limit: u64,
        memo: &mut HashMap<(Id, Id), std::cmp::Ordering>,
    ) -> std::cmp::Ordering {
        let a = self.egraph.find(a);
        let b = self.egraph.find(b);
        if a == b {
            return std::cmp::Ordering::Equal;
        }
        if let Some(&ord) = memo.get(&(a, b)) {
            return ord;
        }
        let ord = match (self.best.get(&a), self.best.get(&b)) {
            (Some((ca, na)), Some((cb, nb))) => ca.cmp(cb).then_with(|| {
                if *ca >= limit {
                    std::cmp::Ordering::Equal
                } else {
                    self.cmp_nodes(na, nb, *ca, memo)
                }
            }),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => std::cmp::Ordering::Equal,
        };
        memo.insert((a, b), ord);
        memo.insert((b, a), ord.reverse());
        ord
    }

    /// Best cost for a class, if any term is constructible.
    #[must_use]
    pub fn cost_of(&self, id: Id) -> Option<u64> {
        self.best.get(&self.egraph.find(id)).map(|(c, _)| *c)
    }

    /// Extracts the best term rooted at `id`.
    ///
    /// # Panics
    ///
    /// Panics if the class has no constructible term (cyclic-only class).
    #[must_use]
    pub fn extract(&self, id: Id) -> RecExpr<L> {
        extract_from_table(self.egraph, &self.best, id)
    }
}

impl<L: Language, N: Analysis<L>, C: CostFunction<L>> Extract<L>
    for WorklistExtractor<'_, L, N, C>
{
    fn cost_of(&self, id: Id) -> Option<u64> {
        WorklistExtractor::cost_of(self, id)
    }

    fn extract(&self, id: Id) -> RecExpr<L> {
        WorklistExtractor::extract(self, id)
    }

    fn stats(&self) -> ExtractionStats {
        ExtractionStats {
            strategy: "worklist",
            table_entries: self.best.len(),
            bank_nodes: 0,
            reused_readouts: 0,
        }
    }
}

/// Reads the best term for `id` out of a settled `class -> (cost, node)`
/// table, sharing nothing across calls (each readout re-walks the chosen
/// sub-dag with its own memo).
fn extract_from_table<L: Language, N: Analysis<L>>(
    egraph: &EGraph<L, N>,
    table: &HashMap<Id, (u64, L)>,
    id: Id,
) -> RecExpr<L> {
    let mut out = RecExpr::new();
    let mut cache: HashMap<Id, Id> = HashMap::new();
    let root = extract_into(egraph, table, id, &mut out, &mut cache);
    debug_assert_eq!(root, out.root_id());
    out
}

fn extract_into<L: Language, N: Analysis<L>>(
    egraph: &EGraph<L, N>,
    table: &HashMap<Id, (u64, L)>,
    id: Id,
    out: &mut RecExpr<L>,
    cache: &mut HashMap<Id, Id>,
) -> Id {
    let id = egraph.find(id);
    if let Some(&done) = cache.get(&id) {
        // Re-add the cached subtree's root? RecExpr is append-only, and
        // children must reference earlier nodes, so a cached index stays
        // valid.
        return done;
    }
    let (_, node) = table
        .get(&id)
        .unwrap_or_else(|| panic!("no constructible term for {id}"));
    let child_ids: Vec<Id> = node
        .children()
        .iter()
        .map(|&c| extract_into(egraph, table, c, out, cache))
        .collect();
    let mut k = 0;
    let remapped = node.map_children(|_| {
        let cid = child_ids[k];
        k += 1;
        cid
    });
    let new_id = out.add(remapped);
    cache.insert(id, new_id);
    new_id
}

/// The shared term bank behind [`SharedTableExtractor`]: each class's chosen
/// node is materialized (children remapped to bank slots) at most once, on
/// the first readout that reaches it; later readouts copy.
#[derive(Debug)]
struct TermBank<L> {
    /// Materialized nodes; children reference earlier bank slots.
    nodes: Vec<L>,
    /// Canonical class → bank slot.
    slot: HashMap<Id, Id>,
    /// Lookups served from sub-dags banked by **earlier** readouts — the
    /// cross-root reuse the bank exists for. Hits on slots created within
    /// the current readout are not counted: that intra-root sharing is
    /// memoized by any strategy's per-root cache.
    reused: usize,
    /// Readout memo, reused across readouts: `copy_memo[s]` is valid for
    /// the current readout iff `copy_gen[s] == gen`. Generation stamping
    /// beats a fresh (bank-sized) memo per root — terms are usually much
    /// smaller than the bank.
    copy_memo: Vec<Id>,
    copy_gen: Vec<u32>,
    gen: u32,
}

impl<L: Language> TermBank<L> {
    fn new() -> Self {
        TermBank {
            nodes: Vec::new(),
            slot: HashMap::new(),
            reused: 0,
            copy_memo: Vec::new(),
            copy_gen: Vec::new(),
            gen: 0,
        }
    }

    /// Materializes the chosen sub-dag of `id` into the bank (memoized
    /// across every readout of this extractor) and returns its slot.
    /// `preexisting` is the bank size when the current readout started;
    /// only hits below it count as cross-root reuse.
    fn ensure<N: Analysis<L>>(
        &mut self,
        egraph: &EGraph<L, N>,
        table: &HashMap<Id, (u64, L)>,
        id: Id,
        preexisting: usize,
    ) -> Id {
        let id = egraph.find(id);
        if let Some(&slot) = self.slot.get(&id) {
            if (slot.0 as usize) < preexisting {
                self.reused += 1;
            }
            return slot;
        }
        let (_, node) = table
            .get(&id)
            .unwrap_or_else(|| panic!("no constructible term for {id}"));
        let node = node.clone();
        let child_slots: Vec<Id> = node
            .children()
            .iter()
            .map(|&c| self.ensure(egraph, table, c, preexisting))
            .collect();
        let mut k = 0;
        let remapped = node.map_children(|_| {
            let s = child_slots[k];
            k += 1;
            s
        });
        let slot = Id(u32::try_from(self.nodes.len()).expect("term bank overflow"));
        self.nodes.push(remapped);
        self.slot.insert(id, slot);
        slot
    }

    /// Starts a new readout: bumps the memo generation and sizes the memo
    /// to the bank (growth only — existing stamps stay valid-by-absence).
    fn begin_readout(&mut self) {
        if self.gen == u32::MAX {
            // Practically unreachable; keep the stamp sound anyway.
            self.gen = 0;
            self.copy_gen.iter_mut().for_each(|g| *g = u32::MAX);
        }
        self.gen += 1;
        self.copy_memo.resize(self.nodes.len(), Id(0));
        self.copy_gen
            .resize(self.nodes.len(), self.gen.wrapping_sub(1));
    }
}

/// Copies the banked sub-dag at `slot` into a fresh [`RecExpr`]. The
/// traversal is the same children-first first-visit DFS as
/// [`extract_into`], so the emitted node sequence — and therefore the
/// term — is byte-identical to a direct table readout; but unlike a table
/// readout it needs no union-find chasing and no hashing — the memo is a
/// dense slot-indexed table validated by generation stamp, which is what
/// makes warm readouts cheap.
fn copy_from_bank<L: Language>(
    nodes: &[L],
    slot: Id,
    out: &mut RecExpr<L>,
    memo: &mut [Id],
    stamps: &mut [u32],
    gen: u32,
) -> Id {
    let i = slot.0 as usize;
    if stamps[i] == gen {
        return memo[i];
    }
    let node = &nodes[i];
    let child_ids: Vec<Id> = node
        .children()
        .iter()
        .map(|&c| copy_from_bank(nodes, c, out, memo, stamps, gen))
        .collect();
    let mut k = 0;
    let remapped = node.map_children(|_| {
        let cid = child_ids[k];
        k += 1;
        cid
    });
    let new_id = out.add(remapped);
    memo[i] = new_id;
    stamps[i] = gen;
    new_id
}

/// Shared-table extraction for multi-root (batched/suite) graphs: one cost
/// table — the same [`WorklistExtractor`] solve, so node choices and output
/// terms are **byte-identical** — plus a term bank that materializes each
/// class's chosen node once across *all* readouts. The per-root recompute of
/// shared sub-dags, which dominates the extract stage when hundreds of suite
/// roots read out of one saturated graph, becomes a memoized arena copy.
///
/// `extract` takes `&self`; the bank lives behind a [`RefCell`] (readouts
/// are not re-entrant, which a `&self`-recursive readout cannot be anyway).
pub struct SharedTableExtractor<'a, L: Language, N: Analysis<L>, C: CostFunction<L>> {
    table: WorklistExtractor<'a, L, N, C>,
    bank: RefCell<TermBank<L>>,
}

impl<'a, L: Language, N: Analysis<L>, C: CostFunction<L>> SharedTableExtractor<'a, L, N, C> {
    /// Solves the cost table (identically to [`WorklistExtractor::new`])
    /// and prepares an empty bank.
    #[must_use]
    pub fn new(egraph: &'a EGraph<L, N>, cost_fn: C) -> Self {
        SharedTableExtractor {
            table: WorklistExtractor::new(egraph, cost_fn),
            bank: RefCell::new(TermBank::new()),
        }
    }

    /// Best cost for a class, if any term is constructible.
    #[must_use]
    pub fn cost_of(&self, id: Id) -> Option<u64> {
        self.table.cost_of(id)
    }

    /// Extracts the best term rooted at `id`, reusing every sub-dag any
    /// earlier readout already materialized.
    ///
    /// # Panics
    ///
    /// Panics if the class has no constructible term (cyclic-only class).
    #[must_use]
    pub fn extract(&self, id: Id) -> RecExpr<L> {
        let mut bank = self.bank.borrow_mut();
        let preexisting = bank.nodes.len();
        let slot = bank.ensure(self.table.egraph, &self.table.best, id, preexisting);
        bank.begin_readout();
        let TermBank {
            nodes,
            copy_memo,
            copy_gen,
            gen,
            ..
        } = &mut *bank;
        let mut out = RecExpr::new();
        let root = copy_from_bank(nodes, slot, &mut out, copy_memo, copy_gen, *gen);
        debug_assert_eq!(root, out.root_id());
        out
    }
}

impl<L: Language, N: Analysis<L>, C: CostFunction<L>> Extract<L>
    for SharedTableExtractor<'_, L, N, C>
{
    fn cost_of(&self, id: Id) -> Option<u64> {
        SharedTableExtractor::cost_of(self, id)
    }

    fn extract(&self, id: Id) -> RecExpr<L> {
        SharedTableExtractor::extract(self, id)
    }

    fn stats(&self) -> ExtractionStats {
        let bank = self.bank.borrow();
        ExtractionStats {
            strategy: "shared-table",
            table_entries: self.table.best.len(),
            bank_nodes: bank.nodes.len(),
            reused_readouts: bank.reused,
        }
    }
}

/// DAG-cost extraction: the cost of a readout is the sum of its **distinct**
/// nodes' own costs — a subterm used five times is charged once, as a
/// CSE-performing backend would execute it. Under tree cost, `f(x, x)` pays
/// for `x` twice and loses to a marginally smaller unshared term; under dag
/// cost it wins, which is the right call on unrolled loop bodies full of
/// repeated index algebra.
///
/// A node's *own* cost is obtained from the [`CostFunction`] by folding
/// zero-cost children (`cost(node, |_| 0)`), so any existing cost model
/// works unchanged.
///
/// The solve is two-phase and deterministic:
///
/// 1. the [`WorklistExtractor`] tree table settles (content-canonical
///    choices — the baseline every class starts from);
/// 2. classes are finalized in ascending tree-cost order; each class
///    re-picks, among its nodes whose children are all **strictly cheaper**
///    (tree cost) than the class itself, the node minimizing the dag cost
///    of `{class} ∪ children's chosen dags`. The strict-descent gate makes
///    every chosen dag acyclic by construction and guarantees children are
///    final before parents ask for their dags. Ties keep the tree-canonical
///    incumbent; classes where no node passes the gate (possible only under
///    non-monotone cost functions) keep their tree choice, priced at tree
///    cost.
///
/// Unlike the other two strategies, dag cost is a different optimization
/// objective: extracted terms may legitimately differ from the worklist
/// output, and the greedy per-class finalization is a heuristic (globally
/// optimal dag extraction is NP-hard). Candidate evaluation merges the
/// children's class sets — O(sub-dag size) per candidate with per-class
/// charges cached — which is fine at selector scale (thousands of
/// classes) but makes this the most expensive of the three strategies on
/// very large graphs.
pub struct DagCostExtractor<'a, L: Language, N: Analysis<L>, C: CostFunction<L>> {
    tree: WorklistExtractor<'a, L, N, C>,
    /// Canonical class → (dag cost, chosen node).
    dag: HashMap<Id, (u64, L)>,
    /// Canonical class → sorted classes in its chosen dag (incl. itself).
    sets: HashMap<Id, Vec<Id>>,
    /// Canonical class → what a parent dag pays for including it: the
    /// chosen node's own cost normally, or the full tree cost for
    /// fallback classes, whose `sets` entry is *opaque* (just the class
    /// itself — charging only an own cost there would silently drop the
    /// whole subtree from parents' accounting). Also a cache: the cost
    /// function runs once per class, not once per set membership.
    charges: HashMap<Id, u64>,
}

impl<'a, L: Language, N: Analysis<L>, C: CostFunction<L>> DagCostExtractor<'a, L, N, C> {
    /// Solves the tree table, then finalizes dag choices bottom-up.
    #[must_use]
    pub fn new(egraph: &'a EGraph<L, N>, cost_fn: C) -> Self {
        let mut ex = DagCostExtractor {
            tree: WorklistExtractor::new(egraph, cost_fn),
            dag: HashMap::new(),
            sets: HashMap::new(),
            charges: HashMap::new(),
        };
        ex.solve();
        ex
    }

    /// The node's own cost: the cost function folded over zero-cost
    /// children.
    fn own_cost(&self, node: &L) -> u64 {
        self.tree.cost_fn.cost(node, &mut |_| 0)
    }

    /// Evaluates one candidate node for `cid`: `None` if any child is
    /// infeasible or not strictly cheaper (tree cost) than `limit`;
    /// otherwise the dag cost and the merged class set.
    fn dag_candidate(&self, cid: Id, node: &L, limit: u64) -> Option<(u64, Vec<Id>)> {
        let mut set: Vec<Id> = vec![cid];
        for &child in node.children() {
            let child = self.tree.egraph.find(child);
            let (child_tree_cost, _) = self.tree.best.get(&child)?;
            if *child_tree_cost >= limit {
                return None;
            }
            set.extend_from_slice(self.sets.get(&child)?);
        }
        set.sort_unstable();
        set.dedup();
        let mut cost = self.own_cost(node);
        for &d in &set {
            if d == cid {
                continue;
            }
            cost = cost.saturating_add(self.charges[&d]);
        }
        Some((cost, set))
    }

    fn solve(&mut self) {
        let mut order: Vec<(u64, Id)> = self
            .tree
            .best
            .iter()
            .map(|(&id, &(c, _))| (c, id))
            .collect();
        order.sort_unstable();
        for (tree_cost, id) in order {
            let tree_node = self.tree.best[&id].1.clone();
            // The tree-canonical winner is the incumbent; other nodes must
            // strictly beat it on dag cost, keeping ties deterministic and
            // aligned with the tree strategy's content order.
            let mut winner = self
                .dag_candidate(id, &tree_node, tree_cost)
                .map(|(cost, set)| (cost, tree_node.clone(), set));
            for node in &self.tree.egraph.class(id).nodes {
                if *node == tree_node {
                    continue;
                }
                let Some((cost, set)) = self.dag_candidate(id, node, tree_cost) else {
                    continue;
                };
                let better = match &winner {
                    None => true,
                    Some((w, _, _)) => cost < *w,
                };
                if better {
                    winner = Some((cost, node.clone(), set));
                }
            }
            match winner {
                Some((cost, node, set)) => {
                    self.charges.insert(id, self.own_cost(&node));
                    self.dag.insert(id, (cost, node));
                    self.sets.insert(id, set);
                }
                None => {
                    // Non-monotone fallback: keep the tree choice at tree
                    // cost with an opaque one-element set, and charge
                    // parents the *whole* tree cost — the set carries no
                    // subtree detail to share or double-count against.
                    self.charges.insert(id, tree_cost);
                    self.dag.insert(id, (tree_cost, tree_node));
                    self.sets.insert(id, vec![id]);
                }
            }
        }
    }

    /// Best dag cost for a class, if any term is constructible.
    #[must_use]
    pub fn cost_of(&self, id: Id) -> Option<u64> {
        self.dag.get(&self.tree.egraph.find(id)).map(|(c, _)| *c)
    }

    /// Extracts the dag-cheapest term rooted at `id`.
    ///
    /// # Panics
    ///
    /// Panics if the class has no constructible term (cyclic-only class).
    #[must_use]
    pub fn extract(&self, id: Id) -> RecExpr<L> {
        extract_from_table(self.tree.egraph, &self.dag, id)
    }
}

impl<L: Language, N: Analysis<L>, C: CostFunction<L>> Extract<L> for DagCostExtractor<'_, L, N, C> {
    fn cost_of(&self, id: Id) -> Option<u64> {
        DagCostExtractor::cost_of(self, id)
    }

    fn extract(&self, id: Id) -> RecExpr<L> {
        DagCostExtractor::extract(self, id)
    }

    fn stats(&self) -> ExtractionStats {
        ExtractionStats {
            strategy: "dag-cost",
            table_entries: self.dag.len(),
            bank_nodes: 0,
            reused_readouts: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math_lang::{n, pdiv, pmul, pvar, Math};
    use crate::rewrite::Rewrite;
    use crate::schedule::Runner;

    type EG = EGraph<Math, ()>;

    #[test]
    fn extracts_smallest_term_after_saturation() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let d = eg.add(Math::Div([m, two]));
        let rules = vec![
            Rewrite::rewrite(
                "assoc",
                pdiv(pmul(pvar("a"), pvar("b")), pvar("c")),
                pmul(pvar("a"), pdiv(pvar("b"), pvar("c"))),
            ),
            Rewrite::rewrite("div-self", pdiv(n(2), n(2)), n(1)),
            Rewrite::rewrite("mul-one", pmul(pvar("a"), n(1)), pvar("a")),
        ];
        Runner::default().run_to_fixpoint(&mut eg, &rules);
        let ex = WorklistExtractor::new(&eg, AstSize);
        assert_eq!(ex.cost_of(d), Some(1));
        assert_eq!(ex.extract(d).to_sexp(), "a");
    }

    #[test]
    fn custom_costs_change_the_winner() {
        // mul is free, shl costs 10: prefer  a * 2  over  a << 1.
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let one = eg.add(Math::Num(1));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let s = eg.add(Math::Shl([a, one]));
        eg.union(m, s);
        eg.rebuild();
        let ex = WorklistExtractor::new(
            &eg,
            FnCost(|node: &Math| match node {
                Math::Shl(_) => 10,
                _ => 1,
            }),
        );
        assert_eq!(ex.extract(m).to_sexp(), "(* a 2)");
        // And the opposite weighting picks the shift.
        let ex2 = WorklistExtractor::new(
            &eg,
            FnCost(|node: &Math| match node {
                Math::Mul(_) => 10,
                _ => 1,
            }),
        );
        assert_eq!(ex2.extract(m).to_sexp(), "(<< a 1)");
    }

    #[test]
    fn shared_subterms_extract_once() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let d = eg.add(Math::Add([m, m]));
        let ex = WorklistExtractor::new(&eg, AstSize);
        let term = ex.extract(d);
        // a, 2, (* a 2), (+ ..): sharing keeps the node count at 4.
        assert_eq!(term.len(), 4);
        assert_eq!(term.to_sexp(), "(+ (* a 2) (* a 2))");
    }

    #[test]
    fn cyclic_classes_are_skipped() {
        // Create x = f(x) by unioning; extraction must still work via the
        // leaf member of the class.
        let mut eg = EG::new();
        let x = eg.add(Math::Sym("x".into()));
        let one = eg.add(Math::Num(1));
        let fx = eg.add(Math::Mul([x, one]));
        eg.union(x, fx);
        eg.rebuild();
        let ex = WorklistExtractor::new(&eg, AstSize);
        assert_eq!(ex.extract(x).to_sexp(), "x");
    }

    #[test]
    fn deprecated_extractor_alias_still_resolves() {
        #![allow(deprecated)]
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let ex: Extractor<'_, Math, (), AstSize> = Extractor::new(&eg, AstSize);
        assert_eq!(ex.cost_of(a), Some(1));
    }

    #[test]
    fn shared_table_readouts_are_byte_identical_and_reused() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let r1 = eg.add(Math::Add([m, m]));
        let r2 = eg.add(Math::Div([m, two]));
        let worklist = WorklistExtractor::new(&eg, AstSize);
        let shared = SharedTableExtractor::new(&eg, AstSize);
        for &root in &[r1, r2, m, a] {
            assert_eq!(worklist.cost_of(root), shared.cost_of(root));
            let w = worklist.extract(root);
            let s = shared.extract(root);
            assert_eq!(w.nodes(), s.nodes(), "readout diverged for {root}");
        }
        let stats = Extract::stats(&shared);
        assert_eq!(stats.strategy, "shared-table");
        // Bank holds each class's chosen node exactly once: a, 2, *, +, /.
        assert_eq!(stats.bank_nodes, 5);
        // Cross-root reuse only: r1 banks everything it needs (its intra-
        // root second use of `m` is not reuse the bank provides), then r2
        // re-hits m and 2, and the m and a readouts hit one each.
        assert_eq!(stats.reused_readouts, 4);
    }

    #[test]
    fn dag_cost_charges_shared_subterms_once() {
        // One class holding both  big + big  (a shared 3-node subterm) and
        // x / y  over two *distinct* 3-node subterms. Tree cost: the add is
        // 7, the div is 7 — the tie-break decides. Dag cost: the add's dag
        // is {+, big's 3 nodes} = 4, the div's is {/, 3, 3} = 7: the add
        // must win outright.
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let big = eg.add(Math::Mul([a, two]));
        let add = eg.add(Math::Add([big, big]));
        let b = eg.add(Math::Sym("b".into()));
        let three = eg.add(Math::Num(3));
        let x = eg.add(Math::Mul([b, three]));
        let c = eg.add(Math::Sym("c".into()));
        let four = eg.add(Math::Num(4));
        let y = eg.add(Math::Mul([c, four]));
        let div = eg.add(Math::Div([x, y]));
        eg.union(add, div);
        eg.rebuild();
        let dag = DagCostExtractor::new(&eg, AstSize);
        assert_eq!(dag.cost_of(add), Some(4));
        assert_eq!(dag.extract(add).to_sexp(), "(+ (* a 2) (* a 2))");
        // The tree strategies are allowed to pick either (both cost 7);
        // dag cost is the genuinely different objective.
        let tree = WorklistExtractor::new(&eg, AstSize);
        assert_eq!(tree.cost_of(add), Some(7));
    }

    #[test]
    fn dag_fallback_classes_charge_parents_their_full_tree_cost() {
        // A non-monotone cost function (Mul and Num are free) makes the
        // strict-descent gate fail for  big = a * 0  (its child `a` costs
        // as much as the class), so `big` takes the fallback path with an
        // opaque one-element set. A parent including `big` must then be
        // charged big's whole tree cost — not just the free Mul node,
        // which would price  big + big  at 1 and shadow every real
        // alternative.
        let weigh = || {
            FnCost(|node: &Math| match node {
                Math::Sym(_) => 5,
                Math::Add(_) => 1,
                _ => 0,
            })
        };
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let zero = eg.add(Math::Num(0));
        let big = eg.add(Math::Mul([a, zero]));
        let add = eg.add(Math::Add([big, big]));
        let tree = WorklistExtractor::new(&eg, weigh());
        assert_eq!(tree.cost_of(big), Some(5));
        let dag = DagCostExtractor::new(&eg, weigh());
        // own(Add) + charge(big) = 1 + 5; the buggy accounting said 1.
        assert_eq!(dag.cost_of(add), Some(6));
        assert_eq!(dag.extract(add).to_sexp(), "(+ (* a 0) (* a 0))");
    }

    #[test]
    fn dag_cost_handles_cycles_and_trivial_graphs() {
        let mut eg = EG::new();
        let x = eg.add(Math::Sym("x".into()));
        let one = eg.add(Math::Num(1));
        let fx = eg.add(Math::Mul([x, one]));
        eg.union(x, fx);
        eg.rebuild();
        let dag = DagCostExtractor::new(&eg, AstSize);
        assert_eq!(dag.extract(x).to_sexp(), "x");
        assert_eq!(dag.cost_of(x), Some(1));
    }

    #[test]
    fn deep_terms_saturate_instead_of_overflowing() {
        // A 64-deep chain where every node claims half the u64 range: any
        // unchecked summation would overflow (and panic in debug builds);
        // the saturating fold must settle at u64::MAX.
        let mut eg = EG::new();
        let mut cur = eg.add(Math::Sym("x".into()));
        let one = eg.add(Math::Num(1));
        for _ in 0..64 {
            cur = eg.add(Math::Mul([cur, one]));
        }
        let ex = WorklistExtractor::new(&eg, FnCost(|_: &Math| u64::MAX / 2));
        assert_eq!(ex.cost_of(cur), Some(u64::MAX));
        let dag = DagCostExtractor::new(&eg, FnCost(|_: &Math| u64::MAX / 2));
        assert_eq!(dag.cost_of(cur), Some(u64::MAX));
        // AstSize on a deep-but-cheap chain stays exact: 2 nodes per level
        // plus the root symbol as a tree (the shared `1` is re-charged per
        // level), 66 distinct nodes as a dag.
        let sized = WorklistExtractor::new(&eg, AstSize);
        assert_eq!(sized.cost_of(cur), Some(129));
        let sized_dag = DagCostExtractor::new(&eg, AstSize);
        assert_eq!(sized_dag.cost_of(cur), Some(66));
    }

    #[test]
    fn strategies_agree_through_the_trait_object() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let strategies: Vec<Box<dyn Extract<Math> + '_>> = vec![
            Box::new(WorklistExtractor::new(&eg, AstSize)),
            Box::new(SharedTableExtractor::new(&eg, AstSize)),
            Box::new(DagCostExtractor::new(&eg, AstSize)),
        ];
        for ex in &strategies {
            assert_eq!(ex.cost_of(m), Some(3), "{}", ex.stats().strategy);
            assert_eq!(ex.extract(m).to_sexp(), "(* a 2)");
            assert_eq!(ex.stats().table_entries, 3);
        }
    }
}
