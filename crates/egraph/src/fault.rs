//! Deterministic fault injection for chaos testing (cargo feature
//! `fault-injection`; never compiled into production builds).
//!
//! A [`FaultPlan`] is a seeded, one-shot fault installed on a
//! [`crate::schedule::Runner`]: panic inside the *n*th rule search, or
//! force one of the budget stops (deadline, node limit, match budget) at
//! the *n*th scheduler iteration. Counters are process-wide atomics shared
//! through an `Arc`, so a plan observed across several runs (per-leaf
//! compiles, a degraded retry after a panic) fires exactly once and every
//! later run proceeds normally — which is exactly the shape of a transient
//! production fault.
//!
//! Budget faults only fire when the run actually has that budget
//! configured, so a forced stop never makes a report claim a budget that
//! was not in force (`DeadlineExhaust` requires a deadline, `MatchFlood` a
//! match budget; `NodeExplosion` needs nothing — every runner has a node
//! limit). [`FaultPlan::times_fired`] lets tests assert the fault actually
//! triggered.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The fault a [`FaultPlan`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the *n*th rule search (0-based, counted across every
    /// run the plan observes).
    RulePanic {
        /// Global search index at which to panic.
        at_search: u64,
    },
    /// Trip the wall-clock deadline at the *n*th scheduler iteration
    /// (fires only when the run has a deadline configured).
    DeadlineExhaust {
        /// Global iteration index at which to trip.
        at_iteration: u64,
    },
    /// Trip the node-limit stop at the *n*th scheduler iteration — the
    /// "exploding rule set" whose growth no rewrite actually caused.
    NodeExplosion {
        /// Global iteration index at which to trip.
        at_iteration: u64,
    },
    /// Trip the match budget at the *n*th scheduler iteration (fires only
    /// when the run has a match budget configured).
    MatchFlood {
        /// Global iteration index at which to trip.
        at_iteration: u64,
    },
}

/// What an iteration-level fault tells the scheduler to record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedStop {
    /// Record `deadline_hit` and stop.
    Deadline,
    /// Record `node_limit_hit` and stop.
    NodeLimit,
    /// Record `match_budget_hit` and stop.
    MatchBudget,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded, deterministic, one-shot fault plan (see the module docs).
#[derive(Debug)]
pub struct FaultPlan {
    fault: Fault,
    searches: AtomicU64,
    iterations: AtomicU64,
    fired: AtomicU64,
}

impl FaultPlan {
    /// A plan injecting exactly `fault`.
    #[must_use]
    pub fn new(fault: Fault) -> Arc<FaultPlan> {
        Arc::new(FaultPlan {
            fault,
            searches: AtomicU64::new(0),
            iterations: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        })
    }

    /// Derives a fault deterministically from a seed: the kind from the
    /// low bits, the trigger point from higher bits — early enough that
    /// realistic workloads (a handful of iterations, dozens of rule
    /// searches per iteration) reach it.
    #[must_use]
    pub fn from_seed(seed: u64) -> Arc<FaultPlan> {
        let mix = splitmix64(seed);
        let fault = match mix % 4 {
            0 => Fault::RulePanic {
                at_search: (mix >> 8) % 64,
            },
            1 => Fault::DeadlineExhaust {
                at_iteration: (mix >> 16) % 6,
            },
            2 => Fault::NodeExplosion {
                at_iteration: (mix >> 16) % 6,
            },
            _ => Fault::MatchFlood {
                at_iteration: (mix >> 16) % 6,
            },
        };
        FaultPlan::new(fault)
    }

    /// The fault this plan injects.
    #[must_use]
    pub fn fault(&self) -> Fault {
        self.fault
    }

    /// How many times the fault has fired (0 or 1; a plan is one-shot).
    #[must_use]
    pub fn times_fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Engine hook: called before every rule search.
    ///
    /// # Panics
    ///
    /// Deliberately, when a [`Fault::RulePanic`] plan reaches its search —
    /// that is the fault being injected.
    pub fn on_search(&self, rule_name: &str) {
        let n = self.searches.fetch_add(1, Ordering::Relaxed);
        if let Fault::RulePanic { at_search } = self.fault {
            if n == at_search {
                self.fired.fetch_add(1, Ordering::Relaxed);
                panic!("injected fault: panic in rule search #{n} ({rule_name})");
            }
        }
    }

    /// Engine hook: called at the top of every scheduler iteration with
    /// the budgets actually in force; returns the stop to record when the
    /// fault fires this iteration.
    pub fn on_iteration(&self, has_deadline: bool, has_match_budget: bool) -> Option<InjectedStop> {
        let n = self.iterations.fetch_add(1, Ordering::Relaxed);
        let stop = match self.fault {
            Fault::DeadlineExhaust { at_iteration } if n == at_iteration && has_deadline => {
                InjectedStop::Deadline
            }
            Fault::NodeExplosion { at_iteration } if n == at_iteration => InjectedStop::NodeLimit,
            Fault::MatchFlood { at_iteration } if n == at_iteration && has_match_budget => {
                InjectedStop::MatchBudget
            }
            _ => return None,
        };
        self.fired.fetch_add(1, Ordering::Relaxed);
        Some(stop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_and_cover_every_kind() {
        let mut kinds = [false; 4];
        for seed in 0..64 {
            let a = FaultPlan::from_seed(seed).fault();
            let b = FaultPlan::from_seed(seed).fault();
            assert_eq!(a, b, "seed {seed} must be deterministic");
            let k = match a {
                Fault::RulePanic { .. } => 0,
                Fault::DeadlineExhaust { .. } => 1,
                Fault::NodeExplosion { .. } => 2,
                Fault::MatchFlood { .. } => 3,
            };
            kinds[k] = true;
        }
        assert!(kinds.iter().all(|&k| k), "64 seeds must cover all kinds");
    }

    #[test]
    fn rule_panic_fires_exactly_once() {
        let plan = FaultPlan::new(Fault::RulePanic { at_search: 2 });
        plan.on_search("a");
        plan.on_search("b");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.on_search("c")))
            .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("injected fault"), "{msg}");
        assert!(msg.contains("(c)"), "{msg}");
        // One-shot: the search counter moved past the trigger.
        plan.on_search("d");
        assert_eq!(plan.times_fired(), 1);
    }

    #[test]
    fn budget_faults_respect_configured_budgets() {
        let plan = FaultPlan::new(Fault::DeadlineExhaust { at_iteration: 0 });
        // No deadline configured: the fault's moment passes unfired.
        assert_eq!(plan.on_iteration(false, false), None);
        assert_eq!(plan.on_iteration(true, true), None, "moment already gone");
        assert_eq!(plan.times_fired(), 0);

        let plan = FaultPlan::new(Fault::MatchFlood { at_iteration: 1 });
        assert_eq!(plan.on_iteration(true, true), None);
        assert_eq!(
            plan.on_iteration(true, true),
            Some(InjectedStop::MatchBudget)
        );
        assert_eq!(plan.times_fired(), 1);

        let plan = FaultPlan::new(Fault::NodeExplosion { at_iteration: 0 });
        assert_eq!(
            plan.on_iteration(false, false),
            Some(InjectedStop::NodeLimit)
        );
    }
}
