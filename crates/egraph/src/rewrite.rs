//! Rules: queries (conjunctions of patterns and relation atoms), guards and
//! appliers — the engine's equivalent of egglog's `rewrite` and `rule`.
//!
//! Every [`Rewrite`] compiles its [`Query`] once at construction into a
//! [`CompiledQuery`] (interned variables, precomputed operator keys), which
//! is what [`Rewrite::run`] searches with. The uncompiled
//! [`Query::search`] is retained as the naive reference implementation for
//! equivalence tests and benchmarking.
//!
//! ## Delta search
//!
//! [`CompiledQuery::search_delta`] finds every match that did not exist
//! when the caller's cutoffs were recorded. Two regimes:
//!
//! * **single-root** queries (every enumeration descends from the first
//!   pattern atom's root — see [`CompiledQuery::delta_eligible`]) probe
//!   only the classes modified since the epoch cutoff, in one round;
//! * everything else — joins with relation atoms or fresh-variable pattern
//!   atoms — is evaluated **semi-naively**: one round per atom, where round
//!   `i` restricts atom `i` to its *delta* (classes modified since the
//!   epoch cutoff for pattern atoms, tuples changed since the relation tick
//!   for relation atoms — see [`crate::relation::Relations::tuples_since`])
//!   and every other atom to its full extent. A new match must use at
//!   least one new atom-match, so the union of the rounds covers exactly
//!   the new matches; rounds over a quiescent graph and relation store are
//!   all empty and cost nearly nothing, where these queries previously
//!   re-ran a full join every pass.
//!
//! Delta probes are **keyed by the atom's root operator**: an op-rooted
//! atom enumerates only classes whose `(class, op_key)` rows changed
//! ([`crate::egraph::EGraph::modified_candidates_for`]), so activity
//! confined to other operators — even in this atom's transitive ancestors
//! — costs it nothing. The pre-op-keying read path (any modified class
//! that contains the operator) is retained behind
//! [`crate::egraph::DeltaTracking::PerClass`] as the A/B baseline; both
//! paths produce identical match sets, and every probe records how many
//! candidate rows it visited vs. skipped into the
//! [`MatchScratch`] counters.

use std::sync::Arc;

use crate::egraph::{Analysis, DeltaTracking, EGraph};
use crate::language::Language;
use crate::pattern::{CompiledNode, MatchScratch, Pattern, Subst};
use crate::pool::SearchPool;
use crate::unionfind::Id;

/// Minimum root-enumeration size at which a parallel-context search
/// actually partitions across the pool. Below it the scatter/barrier
/// overhead (a few channel round-trips) exceeds the join work, so the
/// search runs inline on the scheduler thread — bit-for-bit the serial
/// path. Delta probes over quiescent regions are tiny and stay inline;
/// first-iteration full searches over populated operator rows partition.
pub(crate) const PARALLEL_MIN_ROOTS: usize = 64;

/// Borrowed parallel-search context: the saturation run's worker pool and
/// one [`MatchScratch`] per pool thread. Chunk *i* of a partitioned search
/// always uses scratch *i*, so the probe counters and recycled buffers are
/// never shared between workers.
pub struct ParallelCtx<'a> {
    /// Pool shared across every search of one saturation run.
    pub pool: &'a SearchPool,
    /// Per-worker scratch arenas (`len() >= pool.threads()`).
    pub scratches: &'a mut [MatchScratch],
}

/// One atom of a rule's query.
pub enum Atom<L> {
    /// `(= var pattern)`: the class bound to `var` (or every class, if `var`
    /// is unbound so far) must contain a term matching `pattern`.
    Pat {
        /// Variable naming the matched class.
        var: String,
        /// Pattern the class must contain.
        pattern: Pattern<L>,
    },
    /// `(relation v1 v2 …)`: the tuple of classes bound to the variables
    /// must be in the relation; unbound variables enumerate.
    Rel {
        /// Relation name.
        name: String,
        /// Variable names, one per column.
        vars: Vec<String>,
    },
}

/// A conjunctive query: atoms are solved left to right.
pub struct Query<L> {
    /// Conjuncts.
    pub atoms: Vec<Atom<L>>,
}

impl<L: Language> Query<L> {
    /// Query with a single root pattern bound to `var`.
    #[must_use]
    pub fn single(var: &str, pattern: Pattern<L>) -> Self {
        Query {
            atoms: vec![Atom::Pat {
                var: var.to_string(),
                pattern,
            }],
        }
    }

    /// Adds a `(= var pattern)` atom.
    #[must_use]
    pub fn also(mut self, var: &str, pattern: Pattern<L>) -> Self {
        self.atoms.push(Atom::Pat {
            var: var.to_string(),
            pattern,
        });
        self
    }

    /// Adds a relation atom.
    #[must_use]
    pub fn with_relation(mut self, name: &str, vars: &[&str]) -> Self {
        self.atoms.push(Atom::Rel {
            name: name.to_string(),
            vars: vars.iter().map(|v| (*v).to_string()).collect(),
        });
        self
    }

    /// Compiles the query: interns every variable (shared across atoms)
    /// and precomputes pattern operator keys.
    #[must_use]
    pub fn compile(&self) -> CompiledQuery<L> {
        let mut vars: Vec<String> = Vec::new();
        let intern = Pattern::<L>::intern;
        // Delta-eligibility: a *single* delta probe at the first atom's
        // root is sound when the only *enumeration* of classes happens
        // there. That is the case when every atom is a pattern and every
        // atom after the first constrains a variable some earlier atom
        // already bound (all bindings then descend from the first root,
        // and epoch propagation marks that root whenever any of them
        // changes). A relation atom or a fresh-variable pattern atom
        // enumerates globally — not eligible; those queries are delta-
        // evaluated semi-naively instead (see `search_delta`).
        let mut delta_eligible = !self.atoms.is_empty();
        let atoms: Vec<CompiledAtom<L>> = self
            .atoms
            .iter()
            .enumerate()
            .map(|(i, atom)| match atom {
                Atom::Pat { var, pattern } => {
                    let vars_before = vars.len();
                    let slot = intern(&mut vars, var);
                    if i > 0 && (slot as usize) >= vars_before {
                        delta_eligible = false;
                    }
                    let node = pattern.compile_into(&mut vars);
                    CompiledAtom::Pat { slot, node }
                }
                Atom::Rel { name, vars: cols } => {
                    delta_eligible = false;
                    CompiledAtom::Rel {
                        name: name.clone(),
                        slots: cols.iter().map(|v| intern(&mut vars, v)).collect(),
                    }
                }
            })
            .collect();
        CompiledQuery {
            vars: Arc::new(vars),
            atoms,
            delta_eligible,
        }
    }

    /// Enumerates all substitutions satisfying the query.
    ///
    /// Naive reference implementation (string-keyed binding, full class
    /// iteration); the engine's hot path is [`CompiledQuery::search`].
    #[must_use]
    pub fn search<N: Analysis<L>>(&self, egraph: &EGraph<L, N>) -> Vec<Subst> {
        let mut substs = vec![Subst::new()];
        for atom in &self.atoms {
            let mut next = Vec::new();
            match atom {
                Atom::Pat { var, pattern } => {
                    for s in &substs {
                        if let Some(id) = s.get(var) {
                            for mut m in pattern.search_class(egraph, id, s) {
                                // Root var already bound; keep it.
                                let ok = m.bind(var, egraph.find(id));
                                debug_assert!(ok);
                                next.push(m);
                            }
                        } else {
                            // Sorted enumeration: class-map iteration order
                            // is seeded per process; sorting makes the
                            // reference matcher's match *order* (and hence
                            // equal-cost extraction tie-breaks downstream)
                            // reproducible across runs.
                            let mut ids: Vec<Id> = egraph.classes().map(|c| c.id).collect();
                            ids.sort_unstable();
                            for id in ids {
                                for mut m in pattern.search_class(egraph, id, s) {
                                    if m.bind(var, egraph.find(id)) {
                                        next.push(m);
                                    }
                                }
                            }
                        }
                    }
                }
                Atom::Rel { name, vars } => {
                    for s in &substs {
                        for tuple in egraph.relations.tuples(name) {
                            if tuple.len() != vars.len() {
                                continue;
                            }
                            let mut m = s.clone();
                            let mut ok = true;
                            for (v, &id) in vars.iter().zip(tuple.iter()) {
                                if !m.bind(v, egraph.find(id)) {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                next.push(m);
                            }
                        }
                    }
                }
            }
            substs = next;
            if substs.is_empty() {
                break;
            }
        }
        substs
    }
}

/// A compiled atom: variables as slots into the query's table.
enum CompiledAtom<L> {
    Pat { slot: u32, node: CompiledNode<L> },
    Rel { name: String, slots: Vec<u32> },
}

/// How a search pass restricts its enumerations (see the module docs).
#[derive(Clone, Copy)]
enum Restrict {
    /// Full join over every atom.
    Full,
    /// Single-root delta: unbound-root enumeration probes only classes
    /// whose root-operator rows were stamped at or after the epoch (sound
    /// for delta-eligible queries, whose only enumeration is the first
    /// atom's root).
    Root(u64),
    /// One semi-naive round: atom `index` is restricted to its delta
    /// (classes modified at/after `epoch` for pattern atoms, tuples
    /// changed after `rel_tick` for relation atoms); every other atom
    /// joins in full.
    Atom {
        index: usize,
        epoch: u64,
        rel_tick: u64,
    },
}

/// A [`Query`] compiled for the indexed matcher: one shared variable table,
/// patterns with interned slots and precomputed op keys.
pub struct CompiledQuery<L> {
    vars: Arc<Vec<String>>,
    atoms: Vec<CompiledAtom<L>>,
    delta_eligible: bool,
}

impl<L: Language> CompiledQuery<L> {
    /// Whether a *single* delta probe at the first atom's root soundly
    /// finds every new match: true when all bindings descend from that
    /// root. Queries where this is false (relation atoms, fresh-variable
    /// pattern atoms) still support delta search, via the semi-naive
    /// rounds of [`CompiledQuery::search_delta`].
    #[must_use]
    pub fn delta_eligible(&self) -> bool {
        self.delta_eligible
    }

    /// Enumerates all substitutions satisfying the query, using the
    /// operator index for root enumeration. Same result set as
    /// [`Query::search`].
    #[must_use]
    pub fn search<N: Analysis<L>>(&self, egraph: &EGraph<L, N>) -> Vec<Subst> {
        self.search_with(egraph, &mut MatchScratch::new())
    }

    /// [`CompiledQuery::search`] with a caller-provided scratch arena.
    #[must_use]
    pub fn search_with<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        scratch: &mut MatchScratch,
    ) -> Vec<Subst> {
        let rows = self.search_rows(
            egraph,
            &Restrict::Full,
            DeltaTracking::OpKeyed,
            scratch,
            None,
        );
        self.rows_to_substs(rows)
    }

    /// Like [`CompiledQuery::search`], but for delta-eligible queries the
    /// root enumeration only probes classes whose root-operator rows were
    /// stamped at or after `cutoff` — the classes whose match sets can
    /// have changed since the epoch was recorded (see
    /// [`EGraph::bump_epoch`]). For non-eligible queries this is a full
    /// search; use [`CompiledQuery::search_delta`] to get semi-naive
    /// evaluation for those.
    #[must_use]
    pub fn search_since<N: Analysis<L>>(&self, egraph: &EGraph<L, N>, cutoff: u64) -> Vec<Subst> {
        let restrict = if self.delta_eligible {
            Restrict::Root(cutoff)
        } else {
            Restrict::Full
        };
        let rows = self.search_rows(
            egraph,
            &restrict,
            DeltaTracking::OpKeyed,
            &mut MatchScratch::new(),
            None,
        );
        self.rows_to_substs(rows)
    }

    /// Every match that did not exist when the cutoffs were recorded:
    /// `epoch_cutoff` from [`EGraph::bump_epoch`], `rel_cutoff` from
    /// [`crate::relation::Relations::tick`]. Single delta probe for
    /// delta-eligible queries; semi-naive rounds (one per atom) otherwise.
    /// May return a match that already existed (delta probes
    /// over-approximate); appliers are idempotent, so re-applying is
    /// harmless. Probes are op-keyed; see
    /// [`CompiledQuery::search_delta_tracked`] for the per-class baseline.
    #[must_use]
    pub fn search_delta<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        epoch_cutoff: u64,
        rel_cutoff: u64,
        scratch: &mut MatchScratch,
    ) -> Vec<Subst> {
        self.search_delta_tracked(
            egraph,
            epoch_cutoff,
            rel_cutoff,
            DeltaTracking::OpKeyed,
            scratch,
        )
    }

    /// [`CompiledQuery::search_delta`] with an explicit change-tracking
    /// granularity — [`DeltaTracking::PerClass`] selects the retained
    /// pre-op-keying probe as the A/B baseline. Identical match sets;
    /// only the probed-row counts differ.
    #[must_use]
    pub fn search_delta_tracked<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        epoch_cutoff: u64,
        rel_cutoff: u64,
        tracking: DeltaTracking,
        scratch: &mut MatchScratch,
    ) -> Vec<Subst> {
        if self.delta_eligible {
            let rows = self.search_rows(
                egraph,
                &Restrict::Root(epoch_cutoff),
                tracking,
                scratch,
                None,
            );
            return self.rows_to_substs(rows);
        }
        let classes_dirty = egraph.any_modified_since(epoch_cutoff);
        let rels_dirty = egraph.relations.tick() > rel_cutoff;
        if !classes_dirty && !rels_dirty {
            return Vec::new();
        }
        let mut rows: Vec<Vec<Option<Id>>> = Vec::new();
        for (index, atom) in self.atoms.iter().enumerate() {
            let delta_nonempty = match atom {
                CompiledAtom::Pat { .. } => classes_dirty,
                CompiledAtom::Rel { name, .. } => {
                    rels_dirty && egraph.relations.changed_since(name, rel_cutoff)
                }
            };
            if !delta_nonempty {
                continue;
            }
            let restrict = Restrict::Atom {
                index,
                epoch: epoch_cutoff,
                rel_tick: rel_cutoff,
            };
            rows.extend(self.search_rows(egraph, &restrict, tracking, scratch, None));
        }
        self.dedup_round_rows(&mut rows, scratch);
        self.rows_to_substs(rows)
    }

    /// [`CompiledQuery::search_delta_tracked`] with a parallel-search
    /// context: the single-root probe of delta-eligible queries *and* each
    /// semi-naive round's delta enumeration are partitioned across the
    /// pool. Byte-identical to the serial search — see
    /// `CompiledQuery::search_delta_rounds` (private) for why.
    #[must_use]
    pub fn search_delta_tracked_ctx<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        epoch_cutoff: u64,
        rel_cutoff: u64,
        tracking: DeltaTracking,
        scratch: &mut MatchScratch,
        ctx: &mut ParallelCtx<'_>,
    ) -> Vec<Subst>
    where
        N::Data: Sync,
    {
        if self.delta_eligible {
            return self.search_parallel(
                egraph,
                Restrict::Root(epoch_cutoff),
                tracking,
                scratch,
                ctx,
            );
        }
        self.search_delta_rounds(egraph, epoch_cutoff, rel_cutoff, tracking, scratch, ctx)
    }

    /// Semi-naive evaluation: round `i` restricts atom `i` to its delta,
    /// and the join *starts* from that delta (the restricted atom is
    /// evaluated first), so a round costs work proportional to its delta —
    /// not a full re-join. A match is found by round `i` iff atom `i`'s
    /// contribution is new, so the union over rounds covers every new
    /// match; duplicates (matches with several new atoms) are deduplicated
    /// below. Rounds whose delta is provably empty are skipped outright,
    /// which is what makes quiescent passes free.
    ///
    /// With a [`ParallelCtx`], each pattern-atom round's delta enumeration
    /// is computed once here (probe counters recorded on the scheduler's
    /// scratch, exactly as the serial round records them) and partitioned
    /// across the pool. This is byte-identical to the serial evaluation:
    /// chunk-order concatenation reproduces the serial row order within
    /// each round (the `first_roots` contract on `search_rows`), rounds
    /// accumulate in the same atom order, and the final deterministic
    /// `(round, enumeration, binding)`-ordered sort + dedup is shared with
    /// the serial path — so the merged delta match set cannot depend on
    /// the thread count. Relation-atom rounds have no root enumeration to
    /// partition and always run serially; their deltas are log tails and
    /// tiny by construction.
    fn search_delta_rounds<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        epoch_cutoff: u64,
        rel_cutoff: u64,
        tracking: DeltaTracking,
        scratch: &mut MatchScratch,
        ctx: &mut ParallelCtx<'_>,
    ) -> Vec<Subst>
    where
        N::Data: Sync,
    {
        let classes_dirty = egraph.any_modified_since(epoch_cutoff);
        let rels_dirty = egraph.relations.tick() > rel_cutoff;
        if !classes_dirty && !rels_dirty {
            return Vec::new();
        }
        let mut rows: Vec<Vec<Option<Id>>> = Vec::new();
        for (index, atom) in self.atoms.iter().enumerate() {
            let restrict = Restrict::Atom {
                index,
                epoch: epoch_cutoff,
                rel_tick: rel_cutoff,
            };
            match atom {
                CompiledAtom::Pat { node, .. } => {
                    if !classes_dirty {
                        continue;
                    }
                    let roots = delta_roots(egraph, node, epoch_cutoff, tracking, scratch);
                    rows.extend(
                        self.rows_partitioned(egraph, restrict, tracking, scratch, ctx, &roots),
                    );
                }
                CompiledAtom::Rel { name, .. } => {
                    if !(rels_dirty && egraph.relations.changed_since(name, rel_cutoff)) {
                        continue;
                    }
                    rows.extend(self.search_rows(egraph, &restrict, tracking, scratch, None));
                }
            }
        }
        self.dedup_round_rows(&mut rows, scratch);
        self.rows_to_substs(rows)
    }

    /// The deterministic merge shared by the serial and parallel round
    /// evaluations: a total-order sort over the accumulated round rows
    /// followed by adjacent dedup (matches found by several rounds appear
    /// once). Because both paths feed rows in the same round order with
    /// the same per-round row order, sorting makes the merged result a
    /// pure function of the match *set* — byte-identical at any thread
    /// count.
    fn dedup_round_rows(&self, rows: &mut Vec<Vec<Option<Id>>>, scratch: &mut MatchScratch) {
        rows.sort_unstable();
        rows.dedup_by(|a, b| {
            if a == b {
                // `a` is the one removed: reclaim its buffer.
                scratch.give_row(std::mem::take(a));
                true
            } else {
                false
            }
        });
    }

    fn rows_to_substs(&self, rows: Vec<Vec<Option<Id>>>) -> Vec<Subst> {
        rows.into_iter()
            .map(|b| Subst::from_bindings(Arc::clone(&self.vars), b))
            .collect()
    }

    /// The join loop shared by every search mode. `first_roots`, when
    /// given, overrides the *first evaluated atom's* root enumeration with
    /// an explicit slice — the parallel path partitions the enumeration it
    /// computed once into chunks and runs this loop per chunk, so the
    /// concatenation of the chunk results in chunk order is exactly the
    /// serial result (each atom maps partials to output runs in order; a
    /// per-partial concat-map commutes with partitioning the seed list).
    /// Probe counters are *not* recorded when `first_roots` is given; the
    /// caller that computed the enumeration already recorded them.
    #[allow(clippy::too_many_lines)]
    fn search_rows<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        restrict: &Restrict,
        tracking: DeltaTracking,
        scratch: &mut MatchScratch,
        first_roots: Option<&[Id]>,
    ) -> Vec<Vec<Option<Id>>> {
        debug_assert!(egraph.is_clean(), "search requires a rebuilt e-graph");
        let nvars = self.vars.len();
        let mut partials = scratch.take_list();
        partials.push(scratch.blank_row(nvars));
        let mut next = scratch.take_list();
        // Atom evaluation order: a conjunctive join is order-independent in
        // its result, so a semi-naive round starts from its delta atom and
        // the remaining atoms filter/extend from there — the round's cost
        // scales with the delta, not the full join.
        let delta_first = match restrict {
            Restrict::Atom { index, .. } => Some(*index),
            _ => None,
        };
        let first_atom = delta_first.unwrap_or(0);
        let order = delta_first
            .into_iter()
            .chain((0..self.atoms.len()).filter(|&j| Some(j) != delta_first));
        for i in order {
            let atom = &self.atoms[i];
            match atom {
                CompiledAtom::Pat { slot, node } => {
                    let slot = *slot as usize;
                    // `enum_cutoff` limits this atom's unbound-root
                    // enumeration to modified classes. A delta-restricted
                    // pattern atom always evaluates first (on the single
                    // all-unbound seed row), so restricting the enumeration
                    // is the whole restriction — its root slot cannot be
                    // bound yet.
                    let enum_cutoff = match restrict {
                        Restrict::Full => None,
                        Restrict::Root(cut) => Some(*cut),
                        Restrict::Atom { index, epoch, .. } if *index == i => Some(*epoch),
                        Restrict::Atom { .. } => None,
                    };
                    let mut step = scratch.take_list();
                    // Sorted full enumeration for variable-rooted patterns,
                    // computed at most once per atom (not per partial).
                    let mut all_ids: Option<Vec<Id>> = None;
                    for p in partials.iter() {
                        if let Some(id) = p[slot] {
                            debug_assert!(
                                !matches!(restrict, Restrict::Atom { index, .. } if *index == i),
                                "delta atom is evaluated first; its root is never pre-bound"
                            );
                            node.match_class(egraph, id, p, &mut next, scratch);
                        } else {
                            let visit =
                                |root: Id,
                                 step: &mut Vec<Vec<Option<Id>>>,
                                 next: &mut Vec<Vec<Option<Id>>>,
                                 scratch: &mut MatchScratch| {
                                    node.match_class(egraph, root, p, step, scratch);
                                    for mut m in step.drain(..) {
                                        match m[slot] {
                                            Some(existing) if existing != root => {
                                                scratch.give_row(m);
                                                continue;
                                            }
                                            _ => m[slot] = Some(root),
                                        }
                                        next.push(m);
                                    }
                                };
                            if let Some(roots) = first_roots.filter(|_| i == first_atom) {
                                // Explicit chunk from the parallel path
                                // (or the whole enumeration, computed by
                                // the caller); probes already recorded.
                                for &root in roots {
                                    visit(root, &mut step, &mut next, scratch);
                                }
                            } else if let Some(cut) = enum_cutoff {
                                // Delta probe, keyed by the atom's root
                                // operator: O(changes to that op's rows)
                                // via the per-op log (or the retained
                                // per-class log ∩ index row under the
                                // baseline tracking), zero when the op was
                                // quiet.
                                let (roots, universe) = match node.root_key() {
                                    Some(key) => (
                                        match tracking {
                                            DeltaTracking::OpKeyed => {
                                                egraph.modified_candidates_for(key, cut)
                                            }
                                            DeltaTracking::PerClass => {
                                                egraph.modified_candidates_per_class(key, cut)
                                            }
                                        },
                                        egraph.candidates_for(key).len(),
                                    ),
                                    None => (egraph.modified_since(cut), egraph.num_classes()),
                                };
                                scratch.record_probe(roots.len(), universe);
                                for root in roots {
                                    visit(root, &mut step, &mut next, scratch);
                                }
                            } else {
                                match node.root_key() {
                                    Some(key) => {
                                        for &root in egraph.candidates_for(key) {
                                            visit(root, &mut step, &mut next, scratch);
                                        }
                                    }
                                    None => {
                                        let ids = all_ids.get_or_insert_with(|| {
                                            let mut ids: Vec<Id> =
                                                egraph.classes().map(|c| c.id).collect();
                                            ids.sort_unstable();
                                            ids
                                        });
                                        for &id in ids.iter() {
                                            visit(id, &mut step, &mut next, scratch);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    scratch.give_list(step);
                }
                CompiledAtom::Rel { name, slots } => {
                    let rel_cutoff = match restrict {
                        Restrict::Atom {
                            index, rel_tick, ..
                        } if *index == i => Some(*rel_tick),
                        _ => None,
                    };
                    for p in partials.iter() {
                        let tuples: Box<dyn Iterator<Item = &Vec<Id>>> = match rel_cutoff {
                            Some(t) => Box::new(egraph.relations.tuples_since(name, t)),
                            None => Box::new(egraph.relations.tuples(name)),
                        };
                        'tuples: for tuple in tuples {
                            if tuple.len() != slots.len() {
                                continue;
                            }
                            // Pre-filter on already-bound slots so a
                            // mismatching tuple costs no allocation.
                            for (&slot, &id) in slots.iter().zip(tuple.iter()) {
                                if let Some(existing) = p[slot as usize] {
                                    if existing != egraph.find(id) {
                                        continue 'tuples;
                                    }
                                }
                            }
                            let mut m = scratch.row_from(p);
                            for (&slot, &id) in slots.iter().zip(tuple.iter()) {
                                let id = egraph.find(id);
                                match m[slot as usize] {
                                    // Nonlinear tuple variables can still
                                    // conflict within this pass.
                                    Some(existing) if existing != id => {
                                        scratch.give_row(m);
                                        continue 'tuples;
                                    }
                                    _ => m[slot as usize] = Some(id),
                                }
                            }
                            next.push(m);
                        }
                    }
                }
            }
            for row in partials.drain(..) {
                scratch.give_row(row);
            }
            std::mem::swap(&mut partials, &mut next);
            if partials.is_empty() {
                break;
            }
        }
        scratch.give_list(next);
        partials
    }

    /// Full or single-root-delta search with the root enumeration
    /// partitioned across a [`SearchPool`]. Byte-identical to the serial
    /// search by construction: the enumeration is computed once here —
    /// exactly as [`CompiledQuery::search_rows`] would, probe counters
    /// recorded on the *scheduler's* scratch — then partitioned by
    /// [`CompiledQuery::rows_partitioned`].
    ///
    /// Relation-rooted queries have no root enumeration to partition and
    /// fall back to the serial join. Semi-naive rounds go through
    /// [`CompiledQuery::search_delta_tracked_ctx`] instead, which computes
    /// each round's delta enumeration before partitioning it the same way.
    fn search_parallel<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        restrict: Restrict,
        tracking: DeltaTracking,
        scratch: &mut MatchScratch,
        ctx: &mut ParallelCtx<'_>,
    ) -> Vec<Subst>
    where
        N::Data: Sync,
    {
        debug_assert!(matches!(restrict, Restrict::Full | Restrict::Root(_)));
        let Some(CompiledAtom::Pat { node, .. }) = self.atoms.first() else {
            let rows = self.search_rows(egraph, &restrict, tracking, scratch, None);
            return self.rows_to_substs(rows);
        };
        // The enumeration the serial path would perform at the first atom,
        // computed once; for delta probes the probe counters are recorded
        // here (once), exactly as the serial path records them.
        let mut owned: Option<Vec<Id>> = None;
        let roots: &[Id] = match restrict {
            Restrict::Full => match node.root_key() {
                Some(key) => egraph.candidates_for(key),
                None => {
                    let mut ids: Vec<Id> = egraph.classes().map(|c| c.id).collect();
                    ids.sort_unstable();
                    owned.insert(ids)
                }
            },
            Restrict::Root(cut) => owned.insert(delta_roots(egraph, node, cut, tracking, scratch)),
            Restrict::Atom { .. } => unreachable!("rounds go through search_delta_tracked_ctx"),
        };
        let rows = self.rows_partitioned(egraph, restrict, tracking, scratch, ctx, roots);
        self.rows_to_substs(rows)
    }

    /// Runs the shared join loop over an explicitly computed first-atom
    /// root enumeration, partitioned across the context's pool: the slice
    /// is split into contiguous chunks, each chunk's join evaluated
    /// against the immutable `&EGraph` snapshot with its own per-worker
    /// scratch, and the chunk results concatenated in chunk order — which
    /// is exactly the serial result (see the `first_roots` contract on
    /// [`CompiledQuery::search_rows`]). Enumerations below
    /// [`PARALLEL_MIN_ROOTS`] run inline on the caller — still through
    /// the same override path, so the match order never depends on the
    /// threshold. Probe counters are never recorded here; the caller that
    /// computed the enumeration already recorded them.
    fn rows_partitioned<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        restrict: Restrict,
        tracking: DeltaTracking,
        scratch: &mut MatchScratch,
        ctx: &mut ParallelCtx<'_>,
        roots: &[Id],
    ) -> Vec<Vec<Option<Id>>>
    where
        N::Data: Sync,
    {
        let threads = ctx.pool.threads().min(ctx.scratches.len());
        if threads < 2 || roots.len() < PARALLEL_MIN_ROOTS {
            return self.search_rows(egraph, &restrict, tracking, scratch, Some(roots));
        }
        let chunks: Vec<&[Id]> = roots.chunks(roots.len().div_ceil(threads)).collect();
        let mut outs: Vec<Vec<Vec<Option<Id>>>> = Vec::new();
        outs.resize_with(chunks.len(), Vec::new);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
            .iter()
            .zip(outs.iter_mut())
            .zip(ctx.scratches.iter_mut())
            .map(|((&chunk, out), scr)| {
                Box::new(move || {
                    *out = self.search_rows(egraph, &restrict, tracking, scr, Some(chunk));
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        ctx.pool.scatter(jobs);
        // Chunk-order concatenation == serial match order (see above).
        outs.into_iter().flatten().collect()
    }
}

/// The delta enumeration the serial path performs for an unbound pattern
/// root: classes whose root-operator rows were stamped at or after `cut`,
/// with the probe counters recorded on `scratch` — once, exactly as the
/// serial enumeration records them.
fn delta_roots<L: Language, N: Analysis<L>>(
    egraph: &EGraph<L, N>,
    node: &CompiledNode<L>,
    cut: u64,
    tracking: DeltaTracking,
    scratch: &mut MatchScratch,
) -> Vec<Id> {
    let (roots, universe) = match node.root_key() {
        Some(key) => (
            match tracking {
                DeltaTracking::OpKeyed => egraph.modified_candidates_for(key, cut),
                DeltaTracking::PerClass => egraph.modified_candidates_per_class(key, cut),
            },
            egraph.candidates_for(key).len(),
        ),
        None => (egraph.modified_since(cut), egraph.num_classes()),
    };
    scratch.record_probe(roots.len(), universe);
    roots
}

/// Guard predicate evaluated on each match before application.
pub type Guard<L, N> = Box<dyn Fn(&EGraph<L, N>, &Subst) -> bool + Send + Sync>;

/// Action run on each surviving match; returns whether the e-graph changed.
pub type ApplyFn<L, N> = Box<dyn Fn(&mut EGraph<L, N>, &Subst) -> bool + Send + Sync>;

/// A named rule: query → guard → action.
pub struct Rewrite<L: Language, N: Analysis<L> = ()> {
    /// Rule name (for reports).
    pub name: String,
    /// Query side (uncompiled — the naive reference path).
    pub query: Query<L>,
    /// Compiled query (the indexed path [`Rewrite::run`] uses).
    pub compiled: CompiledQuery<L>,
    /// Optional guard (`:when` clauses).
    pub guard: Option<Guard<L, N>>,
    /// Action side.
    pub applier: ApplyFn<L, N>,
    /// Whether the engine *knows* the guard/applier read nothing beyond the
    /// matched classes (true for guard-less [`Rewrite::rewrite`] rules,
    /// whose applier is the internal instantiate-and-union). Pure rules
    /// skip the scheduler's relations-version fallback for delta search.
    pub(crate) known_pure: bool,
}

impl<L: Language + 'static, N: Analysis<L>> Rewrite<L, N> {
    /// A `rewrite lhs => rhs` rule: matches `lhs` anywhere and unions the
    /// matched class with the instantiated `rhs`.
    #[allow(clippy::self_named_constructors)] // egg's established API name
    pub fn rewrite(name: &str, lhs: Pattern<L>, rhs: Pattern<L>) -> Self {
        Self::rewrite_when(name, lhs, rhs, None)
    }

    /// A conditional rewrite (egglog's `:when`).
    pub fn rewrite_when(
        name: &str,
        lhs: Pattern<L>,
        rhs: Pattern<L>,
        guard: Option<Guard<L, N>>,
    ) -> Self {
        let root = "$root".to_string();
        let rhs2 = rhs;
        let known_pure = guard.is_none();
        let mut rw = Self::rule_when(
            name,
            Query::single(&root, lhs),
            guard,
            Box::new(move |egraph, subst| {
                let root_id = subst.get("$root").expect("root bound by query");
                let new_id = rhs2.instantiate(egraph, subst);
                egraph.union(root_id, new_id).1
            }),
        );
        rw.known_pure = known_pure;
        rw
    }

    /// A general rule with an arbitrary action.
    pub fn rule(name: &str, query: Query<L>, applier: ApplyFn<L, N>) -> Self {
        Self::rule_when(name, query, None, applier)
    }

    fn rule_when(
        name: &str,
        query: Query<L>,
        guard: Option<Guard<L, N>>,
        applier: ApplyFn<L, N>,
    ) -> Self {
        let compiled = query.compile();
        Rewrite {
            name: name.to_string(),
            query,
            compiled,
            guard,
            applier,
            known_pure: false,
        }
    }

    /// Attaches a guard.
    #[must_use]
    pub fn with_guard(mut self, guard: Guard<L, N>) -> Self {
        self.guard = Some(guard);
        self.known_pure = false;
        self
    }

    /// Promises the engine that this rule's guard and applier depend only
    /// on the matched classes (their e-nodes and analysis data) and the
    /// query's relation atoms — never on other classes or unrelated
    /// relation state. (Monotone *writes* — adds, unions, tuple inserts —
    /// are always fine.) The scheduler then drops the conservative
    /// relations-version fallback and may skip the rule entirely while the
    /// graph is quiescent. Every rule in this repository qualifies; rules
    /// whose appliers *read* global relation state must not call this.
    #[must_use]
    pub fn assume_pure(mut self) -> Self {
        self.known_pure = true;
        self
    }
}

impl<L: Language, N: Analysis<L>> Rewrite<L, N> {
    /// Applies `matches`, honoring the guard; returns how many changed the
    /// graph.
    fn apply_matches(&self, egraph: &mut EGraph<L, N>, matches: Vec<Subst>) -> usize {
        let mut changed = 0;
        for m in matches {
            if let Some(g) = &self.guard {
                if !g(egraph, &m) {
                    continue;
                }
            }
            if (self.applier)(egraph, &m) {
                changed += 1;
            }
        }
        changed
    }

    /// Runs the rule once over the whole graph (search with the compiled,
    /// indexed matcher, then apply all matches). Returns the number of
    /// matches that changed the graph. Rebuilds first if the graph is
    /// dirty, but does **not** rebuild after applying.
    pub fn run(&self, egraph: &mut EGraph<L, N>) -> usize {
        self.run_with(egraph, &mut MatchScratch::new())
    }

    /// [`Rewrite::run`] with a caller-provided scratch arena (the scheduler
    /// holds one per saturation run).
    pub fn run_with(&self, egraph: &mut EGraph<L, N>, scratch: &mut MatchScratch) -> usize {
        if !egraph.is_clean() {
            egraph.rebuild();
        }
        let matches = self.compiled.search_with(egraph, scratch);
        self.apply_matches(egraph, matches)
    }

    /// Like [`Rewrite::run`] but with the retained naive matcher — the
    /// benchmark/reference path.
    pub fn run_naive(&self, egraph: &mut EGraph<L, N>) -> usize {
        if !egraph.is_clean() {
            egraph.rebuild();
        }
        let matches = self.query.search(egraph);
        self.apply_matches(egraph, matches)
    }

    /// Delta run: searches only classes modified at or after `cutoff`
    /// (falling back to a full search for non-delta-eligible queries).
    /// The caller is responsible for `cutoff` bookkeeping — see
    /// `schedule::Runner`.
    pub fn run_since(&self, egraph: &mut EGraph<L, N>, cutoff: u64) -> usize {
        if !egraph.is_clean() {
            egraph.rebuild();
        }
        let matches = self.compiled.search_since(egraph, cutoff);
        self.apply_matches(egraph, matches)
    }

    /// Full delta run: applies every match that is new relative to the
    /// recorded cutoffs (`epoch_cutoff` from [`EGraph::bump_epoch`],
    /// `rel_cutoff` from [`crate::relation::Relations::tick`]) — single
    /// root probe for delta-eligible queries, semi-naive rounds otherwise.
    /// `tracking` selects the probe granularity (op-keyed, or the
    /// retained per-class baseline); match sets are identical either way.
    pub fn run_delta(
        &self,
        egraph: &mut EGraph<L, N>,
        epoch_cutoff: u64,
        rel_cutoff: u64,
        tracking: DeltaTracking,
        scratch: &mut MatchScratch,
    ) -> usize {
        if !egraph.is_clean() {
            egraph.rebuild();
        }
        let matches =
            self.compiled
                .search_delta_tracked(egraph, epoch_cutoff, rel_cutoff, tracking, scratch);
        self.apply_matches(egraph, matches)
    }
}

impl<L: Language, N: Analysis<L>> Rewrite<L, N>
where
    N::Data: Sync,
{
    /// [`Rewrite::run_with`] with an optional parallel-search context:
    /// the *search* is partitioned across the context's pool (see
    /// [`ParallelCtx`]), the matches are applied serially in the exact
    /// order the serial search would produce them. With `None` this is
    /// `run_with` verbatim.
    pub fn run_with_ctx(
        &self,
        egraph: &mut EGraph<L, N>,
        scratch: &mut MatchScratch,
        par: Option<&mut ParallelCtx<'_>>,
    ) -> usize {
        let Some(ctx) = par else {
            return self.run_with(egraph, scratch);
        };
        if !egraph.is_clean() {
            egraph.rebuild();
        }
        let matches = self.compiled.search_parallel(
            egraph,
            Restrict::Full,
            DeltaTracking::OpKeyed,
            scratch,
            ctx,
        );
        self.apply_matches(egraph, matches)
    }

    /// [`Rewrite::run_delta`] with an optional parallel-search context:
    /// the single-root delta probe of delta-eligible queries *and* the
    /// pattern-atom rounds of semi-naive evaluation (relation joins,
    /// fresh-variable atoms) are partitioned across the pool — the merged
    /// delta match set is byte-identical to serial at any thread count
    /// (see [`CompiledQuery::search_delta_tracked_ctx`]).
    pub fn run_delta_ctx(
        &self,
        egraph: &mut EGraph<L, N>,
        epoch_cutoff: u64,
        rel_cutoff: u64,
        tracking: DeltaTracking,
        scratch: &mut MatchScratch,
        par: Option<&mut ParallelCtx<'_>>,
    ) -> usize {
        let Some(ctx) = par else {
            return self.run_delta(egraph, epoch_cutoff, rel_cutoff, tracking, scratch);
        };
        if !egraph.is_clean() {
            egraph.rebuild();
        }
        let matches = self.compiled.search_delta_tracked_ctx(
            egraph,
            epoch_cutoff,
            rel_cutoff,
            tracking,
            scratch,
            ctx,
        );
        self.apply_matches(egraph, matches)
    }
}

impl<L: Language, N: Analysis<L>> Rewrite<L, N> {
    /// Whether the engine knows this rule's guard/applier depend only on
    /// the matched classes (see the field docs).
    #[must_use]
    pub fn is_known_pure(&self) -> bool {
        self.known_pure
    }
}

/// Convenience: looks up the id bound to `var`, panicking with the rule
/// context if missing.
#[must_use]
pub fn bound(subst: &Subst, var: &str) -> Id {
    subst
        .get(var)
        .unwrap_or_else(|| panic!("query did not bind ?{var}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math_lang::{n, padd, pdiv, pmul, pvar, Math};

    type EG = EGraph<Math, ()>;

    #[test]
    fn rewrite_commutes_addition() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let ab = eg.add(Math::Add([a, b]));
        let ba = eg.add(Math::Add([b, a]));
        assert_ne!(eg.find(ab), eg.find(ba));
        let comm = Rewrite::<Math>::rewrite(
            "comm-add",
            padd(pvar("x"), pvar("y")),
            padd(pvar("y"), pvar("x")),
        );
        comm.run(&mut eg);
        eg.rebuild();
        assert_eq!(eg.find(ab), eg.find(ba));
    }

    #[test]
    fn fig1_example_a_times_2_div_2() {
        // Paper Fig. 1: rules (a×2)÷2 → a×(2÷2), 2÷2 → 1, a×1 → a.
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let d = eg.add(Math::Div([m, two]));

        let r1 = Rewrite::<Math>::rewrite(
            "assoc",
            pdiv(pmul(pvar("a"), pvar("b")), pvar("c")),
            pmul(pvar("a"), pdiv(pvar("b"), pvar("c"))),
        );
        let r2 = Rewrite::<Math>::rewrite("div-self", pdiv(n(2), n(2)), n(1));
        let r3 = Rewrite::<Math>::rewrite("mul-one", pmul(pvar("a"), n(1)), pvar("a"));

        for _ in 0..4 {
            r1.run(&mut eg);
            r2.run(&mut eg);
            r3.run(&mut eg);
            eg.rebuild();
        }
        assert_eq!(eg.find(d), eg.find(a), "(a*2)/2 must equal a");
    }

    #[test]
    fn guards_filter_matches() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        // Guarded rewrite that refuses every match.
        let never = Rewrite::<Math>::rewrite(
            "never",
            pmul(pvar("x"), pvar("y")),
            pmul(pvar("y"), pvar("x")),
        )
        .with_guard(Box::new(|_, _| false));
        assert_eq!(never.run(&mut eg), 0);
        eg.rebuild();
        let swapped = eg.lookup(&Math::Mul([two, a]));
        assert!(swapped.is_none() || swapped == Some(eg.find(m)));
    }

    #[test]
    fn multi_atom_query_with_relation() {
        // rule: (= e (x * y)) ∧ good(y)  ⇒  mark(e)
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let two = eg.add(Math::Num(2));
        let m_good = eg.add(Math::Mul([a, two]));
        let _m_bad = eg.add(Math::Mul([a, b]));
        eg.relations.insert("good", vec![two]);

        let rule = Rewrite::<Math>::rule(
            "mark-good-products",
            Query::single("e", pmul(pvar("x"), pvar("y"))).with_relation("good", &["y"]),
            Box::new(|eg, s| {
                let e = bound(s, "e");
                eg.relations.insert("marked", vec![e])
            }),
        );
        rule.run(&mut eg);
        eg.rebuild();
        assert_eq!(eg.relations.len("marked"), 1);
        assert!(eg.relations.contains("marked", &[eg.find(m_good)]));
    }

    #[test]
    fn relation_atom_enumerates_unbound_vars() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        eg.relations.insert("pair", vec![a, b]);
        eg.relations.insert("pair", vec![b, a]);
        let q: Query<Math> = Query { atoms: vec![] };
        let q = q.with_relation("pair", &["x", "y"]);
        assert_eq!(q.search(&eg).len(), 2);
        assert_eq!(q.compile().search(&eg).len(), 2);
        // Non-linear: pair(x, x) matches nothing.
        let q2: Query<Math> = Query { atoms: vec![] };
        let q2 = q2.with_relation("pair", &["x", "x"]);
        assert_eq!(q2.search(&eg).len(), 0);
        assert_eq!(q2.compile().search(&eg).len(), 0);
    }

    #[test]
    fn bound_pattern_atom_constrains_existing_binding() {
        // (= e (x * 2)) ∧ (= x (p + q)) — second atom searched inside x.
        let mut eg = EG::new();
        let p = eg.add(Math::Sym("p".into()));
        let q = eg.add(Math::Sym("q".into()));
        let sum = eg.add(Math::Add([p, q]));
        let two = eg.add(Math::Num(2));
        let _m = eg.add(Math::Mul([sum, two]));
        let plain = eg.add(Math::Sym("z".into()));
        let _m2 = eg.add(Math::Mul([plain, two]));

        let query = Query::single("e", pmul(pvar("x"), n(2))).also("x", padd(pvar("p"), pvar("q")));
        for results in [query.search(&eg), query.compile().search(&eg)] {
            assert_eq!(results.len(), 1, "only the sum-operand product matches");
            assert_eq!(results[0].get("p"), Some(p));
            assert_eq!(results[0].get("q"), Some(q));
        }
    }

    #[test]
    fn compiled_query_matches_naive_on_all_atom_shapes() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let two = eg.add(Math::Num(2));
        let m1 = eg.add(Math::Mul([a, two]));
        let _m2 = eg.add(Math::Mul([b, two]));
        let _s = eg.add(Math::Add([m1, b]));
        eg.relations.insert("good", vec![two]);
        eg.relations.insert("good", vec![b]);

        let queries: Vec<Query<Math>> = vec![
            Query::single("e", pmul(pvar("x"), pvar("y"))),
            Query::single("e", pmul(pvar("x"), n(2))),
            Query::single("e", pvar("e")),
            Query::single("e", pmul(pvar("x"), pvar("y"))).with_relation("good", &["y"]),
            Query::single("e", padd(pvar("x"), pvar("y"))).also("x", pmul(pvar("p"), pvar("q"))),
        ];
        for q in &queries {
            let naive = q.search(&eg);
            let compiled = q.compile().search(&eg);
            assert_eq!(naive.len(), compiled.len());
            for m in &naive {
                assert!(compiled.contains(m), "compiled missed {m:?}");
            }
        }
    }

    /// Tentpole oracle: semi-naive delta rounds partitioned across a pool
    /// produce the *byte-identical* match set — same substitutions, same
    /// order, same probe counters — as the serial rounds, at any thread
    /// count, for both non-eligible query shapes (relation atoms and
    /// fresh-variable pattern atoms) with deltas wide enough
    /// (> `PARALLEL_MIN_ROOTS`) to actually partition.
    #[test]
    fn parallel_delta_rounds_are_byte_identical_to_serial() {
        use crate::pool::SearchPool;
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        // A first generation of products, searched once to set the cutoffs.
        for i in 0..20 {
            let s = eg.add(Math::Sym(format!("old{i}")));
            let m = eg.add(Math::Mul([a, s]));
            if i % 2 == 0 {
                eg.relations.insert("good", vec![s]);
            }
            let _ = m;
        }
        eg.rebuild();
        let epoch_cutoff = eg.bump_epoch();
        let rel_cutoff = eg.relations.tick();
        // A delta far wider than PARALLEL_MIN_ROOTS: new products and new
        // relation tuples, so every round of both queries is non-empty.
        for i in 0..200 {
            let s = eg.add(Math::Sym(format!("new{i}")));
            let _ = eg.add(Math::Mul([a, s]));
            if i % 3 == 0 {
                eg.relations.insert("good", vec![s]);
            }
        }
        eg.rebuild();

        let queries: Vec<CompiledQuery<Math>> = vec![
            Query::single("e", pmul(pvar("x"), pvar("y")))
                .with_relation("good", &["y"])
                .compile(),
            Query::single("e", pmul(pvar("x"), pvar("y")))
                .also("f", pmul(pvar("p"), pvar("q")))
                .compile(),
        ];
        for q in &queries {
            assert!(!q.delta_eligible());
            let mut serial_scratch = MatchScratch::new();
            let serial = q.search_delta_tracked(
                &eg,
                epoch_cutoff,
                rel_cutoff,
                DeltaTracking::OpKeyed,
                &mut serial_scratch,
            );
            assert!(!serial.is_empty(), "the delta must actually match");
            let serial_probes = serial_scratch.take_probe_counters();
            for threads in [2, 4] {
                let pool = SearchPool::new(threads);
                let mut scratches: Vec<MatchScratch> =
                    (0..pool.threads()).map(|_| MatchScratch::new()).collect();
                let mut ctx = ParallelCtx {
                    pool: &pool,
                    scratches: &mut scratches,
                };
                let mut scratch = MatchScratch::new();
                let par = q.search_delta_tracked_ctx(
                    &eg,
                    epoch_cutoff,
                    rel_cutoff,
                    DeltaTracking::OpKeyed,
                    &mut scratch,
                    &mut ctx,
                );
                assert_eq!(
                    serial, par,
                    "match set must be identical at {threads} threads"
                );
                assert_eq!(
                    serial_probes,
                    scratch.take_probe_counters(),
                    "probe counters must be identical at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn delta_search_sees_only_new_matches() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let _m = eg.add(Math::Mul([a, two]));
        eg.rebuild();
        let q = Query::single("e", pmul(pvar("x"), pvar("y"))).compile();
        assert!(q.delta_eligible());
        // Full search finds the existing product.
        assert_eq!(q.search(&eg).len(), 1);
        let cutoff = eg.bump_epoch();
        // Nothing changed since the cutoff: delta search is empty.
        assert!(q.search_since(&eg, cutoff).is_empty());
        // A new product appears: delta search reports exactly it.
        let b = eg.add(Math::Sym("b".into()));
        let mb = eg.add(Math::Mul([b, two]));
        eg.rebuild();
        let delta = q.search_since(&eg, cutoff);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].get("e"), Some(eg.find(mb)));
    }
}
