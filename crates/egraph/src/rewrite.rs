//! Rules: queries (conjunctions of patterns and relation atoms), guards and
//! appliers — the engine's equivalent of egglog's `rewrite` and `rule`.

use crate::egraph::{Analysis, EGraph};
use crate::language::Language;
use crate::pattern::{Pattern, Subst};
use crate::unionfind::Id;

/// One atom of a rule's query.
pub enum Atom<L> {
    /// `(= var pattern)`: the class bound to `var` (or every class, if `var`
    /// is unbound so far) must contain a term matching `pattern`.
    Pat {
        /// Variable naming the matched class.
        var: String,
        /// Pattern the class must contain.
        pattern: Pattern<L>,
    },
    /// `(relation v1 v2 …)`: the tuple of classes bound to the variables
    /// must be in the relation; unbound variables enumerate.
    Rel {
        /// Relation name.
        name: String,
        /// Variable names, one per column.
        vars: Vec<String>,
    },
}

/// A conjunctive query: atoms are solved left to right.
pub struct Query<L> {
    /// Conjuncts.
    pub atoms: Vec<Atom<L>>,
}

impl<L: Language> Query<L> {
    /// Query with a single root pattern bound to `var`.
    #[must_use]
    pub fn single(var: &str, pattern: Pattern<L>) -> Self {
        Query {
            atoms: vec![Atom::Pat {
                var: var.to_string(),
                pattern,
            }],
        }
    }

    /// Adds a `(= var pattern)` atom.
    #[must_use]
    pub fn also(mut self, var: &str, pattern: Pattern<L>) -> Self {
        self.atoms.push(Atom::Pat {
            var: var.to_string(),
            pattern,
        });
        self
    }

    /// Adds a relation atom.
    #[must_use]
    pub fn with_relation(mut self, name: &str, vars: &[&str]) -> Self {
        self.atoms.push(Atom::Rel {
            name: name.to_string(),
            vars: vars.iter().map(|v| (*v).to_string()).collect(),
        });
        self
    }

    /// Enumerates all substitutions satisfying the query.
    #[must_use]
    pub fn search<N: Analysis<L>>(&self, egraph: &EGraph<L, N>) -> Vec<Subst> {
        let mut substs = vec![Subst::new()];
        for atom in &self.atoms {
            let mut next = Vec::new();
            match atom {
                Atom::Pat { var, pattern } => {
                    for s in &substs {
                        if let Some(id) = s.get(var) {
                            for mut m in pattern.search_class(egraph, id, s) {
                                // Root var already bound; keep it.
                                let ok = m.bind(var, egraph.find(id));
                                debug_assert!(ok);
                                next.push(m);
                            }
                        } else {
                            for class in egraph.classes() {
                                for mut m in pattern.search_class(egraph, class.id, s) {
                                    if m.bind(var, egraph.find(class.id)) {
                                        next.push(m);
                                    }
                                }
                            }
                        }
                    }
                }
                Atom::Rel { name, vars } => {
                    for s in &substs {
                        for tuple in egraph.relations.tuples(name) {
                            if tuple.len() != vars.len() {
                                continue;
                            }
                            let mut m = s.clone();
                            let mut ok = true;
                            for (v, &id) in vars.iter().zip(tuple.iter()) {
                                if !m.bind(v, egraph.find(id)) {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                next.push(m);
                            }
                        }
                    }
                }
            }
            substs = next;
            if substs.is_empty() {
                break;
            }
        }
        substs
    }
}

/// Guard predicate evaluated on each match before application.
pub type Guard<L, N> = Box<dyn Fn(&EGraph<L, N>, &Subst) -> bool>;

/// Action run on each surviving match; returns whether the e-graph changed.
pub type ApplyFn<L, N> = Box<dyn Fn(&mut EGraph<L, N>, &Subst) -> bool>;

/// A named rule: query → guard → action.
pub struct Rewrite<L: Language, N: Analysis<L> = ()> {
    /// Rule name (for reports).
    pub name: String,
    /// Query side.
    pub query: Query<L>,
    /// Optional guard (`:when` clauses).
    pub guard: Option<Guard<L, N>>,
    /// Action side.
    pub applier: ApplyFn<L, N>,
}

impl<L: Language + 'static, N: Analysis<L>> Rewrite<L, N> {
    /// A `rewrite lhs => rhs` rule: matches `lhs` anywhere and unions the
    /// matched class with the instantiated `rhs`.
    pub fn rewrite(name: &str, lhs: Pattern<L>, rhs: Pattern<L>) -> Self {
        Self::rewrite_when(name, lhs, rhs, None)
    }

    /// A conditional rewrite (egglog's `:when`).
    pub fn rewrite_when(
        name: &str,
        lhs: Pattern<L>,
        rhs: Pattern<L>,
        guard: Option<Guard<L, N>>,
    ) -> Self {
        let root = "$root".to_string();
        let rhs2 = rhs;
        Rewrite {
            name: name.to_string(),
            query: Query::single(&root, lhs),
            guard,
            applier: Box::new(move |egraph, subst| {
                let root_id = subst.get("$root").expect("root bound by query");
                let new_id = rhs2.instantiate(egraph, subst);
                egraph.union(root_id, new_id).1
            }),
        }
    }

    /// A general rule with an arbitrary action.
    pub fn rule(name: &str, query: Query<L>, applier: ApplyFn<L, N>) -> Self {
        Rewrite {
            name: name.to_string(),
            query,
            guard: None,
            applier,
        }
    }

    /// Attaches a guard.
    #[must_use]
    pub fn with_guard(mut self, guard: Guard<L, N>) -> Self {
        self.guard = Some(guard);
        self
    }
}

impl<L: Language, N: Analysis<L>> Rewrite<L, N> {
    /// Runs the rule once over the whole graph (search, then apply all
    /// matches). Returns the number of matches that changed the graph.
    /// Rebuilds first if the graph is dirty, but does **not** rebuild after
    /// applying.
    pub fn run(&self, egraph: &mut EGraph<L, N>) -> usize {
        if !egraph.is_clean() {
            egraph.rebuild();
        }
        let matches = self.query.search(egraph);
        let mut changed = 0;
        for m in matches {
            if let Some(g) = &self.guard {
                if !g(egraph, &m) {
                    continue;
                }
            }
            if (self.applier)(egraph, &m) {
                changed += 1;
            }
        }
        changed
    }
}

/// Convenience: looks up the id bound to `var`, panicking with the rule
/// context if missing.
#[must_use]
pub fn bound(subst: &Subst, var: &str) -> Id {
    subst
        .get(var)
        .unwrap_or_else(|| panic!("query did not bind ?{var}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math_lang::{n, padd, pdiv, pmul, pvar, Math};

    type EG = EGraph<Math, ()>;

    #[test]
    fn rewrite_commutes_addition() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let ab = eg.add(Math::Add([a, b]));
        let ba = eg.add(Math::Add([b, a]));
        assert_ne!(eg.find(ab), eg.find(ba));
        let comm = Rewrite::<Math>::rewrite(
            "comm-add",
            padd(pvar("x"), pvar("y")),
            padd(pvar("y"), pvar("x")),
        );
        comm.run(&mut eg);
        eg.rebuild();
        assert_eq!(eg.find(ab), eg.find(ba));
    }

    #[test]
    fn fig1_example_a_times_2_div_2() {
        // Paper Fig. 1: rules (a×2)÷2 → a×(2÷2), 2÷2 → 1, a×1 → a.
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let d = eg.add(Math::Div([m, two]));

        let r1 = Rewrite::<Math>::rewrite(
            "assoc",
            pdiv(pmul(pvar("a"), pvar("b")), pvar("c")),
            pmul(pvar("a"), pdiv(pvar("b"), pvar("c"))),
        );
        let r2 = Rewrite::<Math>::rewrite("div-self", pdiv(n(2), n(2)), n(1));
        let r3 = Rewrite::<Math>::rewrite("mul-one", pmul(pvar("a"), n(1)), pvar("a"));

        for _ in 0..4 {
            r1.run(&mut eg);
            r2.run(&mut eg);
            r3.run(&mut eg);
            eg.rebuild();
        }
        assert_eq!(eg.find(d), eg.find(a), "(a*2)/2 must equal a");
    }

    #[test]
    fn guards_filter_matches() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        // Guarded rewrite that refuses every match.
        let never = Rewrite::<Math>::rewrite(
            "never",
            pmul(pvar("x"), pvar("y")),
            pmul(pvar("y"), pvar("x")),
        )
        .with_guard(Box::new(|_, _| false));
        assert_eq!(never.run(&mut eg), 0);
        eg.rebuild();
        let swapped = eg.lookup(&Math::Mul([two, a]));
        assert!(swapped.is_none() || swapped == Some(eg.find(m)));
    }

    #[test]
    fn multi_atom_query_with_relation() {
        // rule: (= e (x * y)) ∧ good(y)  ⇒  mark(e)
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        let two = eg.add(Math::Num(2));
        let m_good = eg.add(Math::Mul([a, two]));
        let _m_bad = eg.add(Math::Mul([a, b]));
        eg.relations.insert("good", vec![two]);

        let rule = Rewrite::<Math>::rule(
            "mark-good-products",
            Query::single("e", pmul(pvar("x"), pvar("y"))).with_relation("good", &["y"]),
            Box::new(|eg, s| {
                let e = bound(s, "e");
                eg.relations.insert("marked", vec![e])
            }),
        );
        rule.run(&mut eg);
        eg.rebuild();
        assert_eq!(eg.relations.len("marked"), 1);
        assert!(eg.relations.contains("marked", &[eg.find(m_good)]));
    }

    #[test]
    fn relation_atom_enumerates_unbound_vars() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let b = eg.add(Math::Sym("b".into()));
        eg.relations.insert("pair", vec![a, b]);
        eg.relations.insert("pair", vec![b, a]);
        let q: Query<Math> = Query { atoms: vec![] };
        let q = q.with_relation("pair", &["x", "y"]);
        assert_eq!(q.search(&eg).len(), 2);
        // Non-linear: pair(x, x) matches nothing.
        let q2: Query<Math> = Query { atoms: vec![] };
        let q2 = q2.with_relation("pair", &["x", "x"]);
        assert_eq!(q2.search(&eg).len(), 0);
    }

    #[test]
    fn bound_pattern_atom_constrains_existing_binding() {
        // (= e (x * 2)) ∧ (= x (p + q)) — second atom searched inside x.
        let mut eg = EG::new();
        let p = eg.add(Math::Sym("p".into()));
        let q = eg.add(Math::Sym("q".into()));
        let sum = eg.add(Math::Add([p, q]));
        let two = eg.add(Math::Num(2));
        let _m = eg.add(Math::Mul([sum, two]));
        let plain = eg.add(Math::Sym("z".into()));
        let _m2 = eg.add(Math::Mul([plain, two]));

        let query = Query::single("e", pmul(pvar("x"), n(2)))
            .also("x", padd(pvar("p"), pvar("q")));
        let results = query.search(&eg);
        assert_eq!(results.len(), 1, "only the sum-operand product matches");
        assert_eq!(results[0].get("p"), Some(p));
        assert_eq!(results[0].get("q"), Some(q));
    }
}
