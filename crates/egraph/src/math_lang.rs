//! A tiny arithmetic language used to test the engine — the paper's Fig. 1
//! example `(a×2)÷2 → a` is reproduced in this module's tests.

use std::hash::{Hash, Hasher};

use crate::language::{op_hasher, Language};
use crate::pattern::Pattern;
use crate::snapshot::{SnapshotError, SnapshotNode, SnapshotReader, SnapshotWriter};
use crate::unionfind::Id;

/// Arithmetic e-nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Math {
    /// Integer literal.
    Num(i64),
    /// Symbolic constant.
    Sym(String),
    /// Addition.
    Add([Id; 2]),
    /// Multiplication.
    Mul([Id; 2]),
    /// Division.
    Div([Id; 2]),
    /// Left shift.
    Shl([Id; 2]),
}

impl Language for Math {
    fn children(&self) -> &[Id] {
        match self {
            Math::Num(_) | Math::Sym(_) => &[],
            Math::Add(c) | Math::Mul(c) | Math::Div(c) | Math::Shl(c) => c,
        }
    }

    fn children_mut(&mut self) -> &mut [Id] {
        match self {
            Math::Num(_) | Math::Sym(_) => &mut [],
            Math::Add(c) | Math::Mul(c) | Math::Div(c) | Math::Shl(c) => c,
        }
    }

    fn matches_op(&self, other: &Self) -> bool {
        match (self, other) {
            (Math::Num(a), Math::Num(b)) => a == b,
            (Math::Sym(a), Math::Sym(b)) => a == b,
            (Math::Add(_), Math::Add(_))
            | (Math::Mul(_), Math::Mul(_))
            | (Math::Div(_), Math::Div(_))
            | (Math::Shl(_), Math::Shl(_)) => true,
            _ => false,
        }
    }

    fn op_name(&self) -> String {
        match self {
            Math::Num(n) => n.to_string(),
            Math::Sym(s) => s.clone(),
            Math::Add(_) => "+".to_string(),
            Math::Mul(_) => "*".to_string(),
            Math::Div(_) => "/".to_string(),
            Math::Shl(_) => "<<".to_string(),
        }
    }

    fn op_key(&self) -> u64 {
        // Discriminant + payload, skipping the default's String round-trip.
        let mut h = op_hasher();
        std::mem::discriminant(self).hash(&mut h);
        match self {
            Math::Num(v) => v.hash(&mut h),
            Math::Sym(s) => s.hash(&mut h),
            Math::Add(_) | Math::Mul(_) | Math::Div(_) | Math::Shl(_) => {}
        }
        h.finish()
    }
}

impl SnapshotNode for Math {
    fn write_node(&self, w: &mut SnapshotWriter) {
        match self {
            Math::Num(v) => {
                w.u8(0);
                w.i64(*v);
            }
            Math::Sym(s) => {
                w.u8(1);
                w.str(s);
            }
            Math::Add(c) | Math::Mul(c) | Math::Div(c) | Math::Shl(c) => {
                w.u8(match self {
                    Math::Add(_) => 2,
                    Math::Mul(_) => 3,
                    Math::Div(_) => 4,
                    _ => 5,
                });
                w.id(c[0]);
                w.id(c[1]);
            }
        }
    }

    fn read_node(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let tag = r.u8()?;
        Ok(match tag {
            0 => Math::Num(r.i64()?),
            1 => Math::Sym(r.str()?),
            2 => Math::Add([r.id()?, r.id()?]),
            3 => Math::Mul([r.id()?, r.id()?]),
            4 => Math::Div([r.id()?, r.id()?]),
            5 => Math::Shl([r.id()?, r.id()?]),
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown Math node tag {other}"
                )))
            }
        })
    }
}

/// Pattern variable shorthand.
#[must_use]
pub fn pvar(name: &str) -> Pattern<Math> {
    Pattern::var(name)
}

/// Literal-number pattern.
#[must_use]
pub fn n(v: i64) -> Pattern<Math> {
    Pattern::Node(Math::Num(v), vec![])
}

/// `(a * b)` pattern.
#[must_use]
pub fn pmul(a: Pattern<Math>, b: Pattern<Math>) -> Pattern<Math> {
    Pattern::Node(Math::Mul([Id(0), Id(0)]), vec![a, b])
}

/// `(a / b)` pattern.
#[must_use]
pub fn pdiv(a: Pattern<Math>, b: Pattern<Math>) -> Pattern<Math> {
    Pattern::Node(Math::Div([Id(0), Id(0)]), vec![a, b])
}

/// `(a + b)` pattern.
#[must_use]
pub fn padd(a: Pattern<Math>, b: Pattern<Math>) -> Pattern<Math> {
    Pattern::Node(Math::Add([Id(0), Id(0)]), vec![a, b])
}

/// `(a << b)` pattern.
#[must_use]
pub fn pshl(a: Pattern<Math>, b: Pattern<Math>) -> Pattern<Math> {
    Pattern::Node(Math::Shl([Id(0), Id(0)]), vec![a, b])
}
