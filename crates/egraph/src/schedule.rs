//! Rule scheduling: the paper's §III-D2 strategy.
//!
//! HARDBOILED runs a fixed number of outer iterations of the axiomatic,
//! application-specific and lowering rules, and between each iteration runs
//! the *supporting* rules (type analysis, shape tracking) to a fixpoint —
//! supporting rules always saturate in finitely many steps.
//!
//! The runner drives the engine's **delta search**: for every rule it
//! remembers the modification epoch (and relation change tick) at which it
//! last searched, and re-probes only what changed since — a single root
//! probe for delta-eligible rules, semi-naive join rounds for rules with
//! relation atoms or fresh-variable pattern atoms (see
//! `CompiledQuery::search_delta`) — so once a phase saturates, re-running
//! its rules costs almost nothing. Probes are **keyed by each atom's root
//! operator**: a rule rooted at `Mul` re-probes only classes whose `Mul`
//! rows changed since it last ran, not every modified class that happens
//! to contain a `Mul` node ([`Runner::use_per_class_deltas`] restores the
//! broader pre-op-keying probes as the A/B baseline, and
//! [`RunReport::delta_probed_rows`] / [`RunReport::delta_skipped_rows`]
//! count the difference). Rules marked [`Rewrite::assume_pure`]
//! (applicability depends only on the matched classes and the query's own
//! relation atoms) are additionally skipped outright while the graph and
//! relation store are quiescent; for rules *not* marked pure, any new
//! relation tuple since their last run forces a full search as a safety
//! net (their guards may read relation state the query does not mention).
//! One [`MatchScratch`] arena per saturation run is threaded through every
//! search so the compiled matcher's binding buffers are recycled across
//! candidates, rules and passes. Setting [`Runner::use_naive_matcher`]
//! bypasses all of this and benchmarks the retained naive reference
//! matcher.
//!
//! **Profiling:** [`Runner::profile_sink`] opts a run into per-rule
//! observability — each searched rule reports an
//! [`hb_obs::RuleSearchSample`] (name, probed rows, matches, duration)
//! and each end-of-pass congruence rebuild reports its duration. With no
//! sink installed (the default) every hook site is a single branch: no
//! clock reads, no probe-counter drains, nothing the saturation loop can
//! feel.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hb_obs::{ProfileHandle, RuleSearchSample};

use crate::egraph::{Analysis, DeltaTracking, EGraph};
use crate::language::Language;
use crate::pattern::MatchScratch;
use crate::pool::SearchPool;
use crate::rewrite::{ParallelCtx, Rewrite};

/// Statistics from a saturation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Outer iterations executed.
    pub iterations: usize,
    /// Total matches that changed the graph.
    pub applied: usize,
    /// E-nodes after the run.
    pub nodes: usize,
    /// E-classes after the run.
    pub classes: usize,
    /// Whether the run stopped because nothing changed.
    pub saturated: bool,
    /// Whether the run stopped because the node limit was hit.
    pub node_limit_hit: bool,
    /// Whether the run stopped because the wall-clock deadline passed.
    pub deadline_hit: bool,
    /// Whether the run stopped because the match budget was spent.
    pub match_budget_hit: bool,
    /// Whether the run stopped because its [`CancelToken`] was tripped.
    pub cancelled: bool,
    /// Rule searches that ran as delta probes (single-root or semi-naive).
    pub delta_searches: usize,
    /// Rule searches that ran in full (first runs and impure-guard
    /// fallbacks after relation growth).
    pub full_searches: usize,
    /// Rule searches skipped entirely by the quiescence check.
    pub skipped_searches: usize,
    /// Candidate op rows (classes) delta probes actually visited. Under
    /// op-keyed tracking a probe enumerates only classes whose
    /// `(class, root_op)` rows changed since the rule last ran; under the
    /// per-class baseline, every modified class containing the root op.
    pub delta_probed_rows: usize,
    /// Candidate op rows delta probes skipped: the probed operators'
    /// remaining index-row entries, which were quiet since the rule last
    /// ran. `probed + skipped` is the work a non-delta indexed search
    /// would have done, so `skipped / (probed + skipped)` is the delta
    /// machinery's coverage.
    pub delta_skipped_rows: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl RunReport {
    /// Whether the run was cut short by any budget (node limit, deadline
    /// or match budget) rather than saturating or exhausting its
    /// iteration cap. The e-graph is still valid — truncation stops
    /// between rule searches, after the pass's rebuild — so extraction on
    /// the best-so-far graph is always sound.
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.node_limit_hit || self.deadline_hit || self.match_budget_hit || self.cancelled
    }

    /// Folds a sub-run (e.g. a supporting-rule fixpoint) into this report:
    /// applied matches and search-mode counters accumulate; sizes, flags
    /// and timing stay the outer run's.
    fn absorb(&mut self, sub: &RunReport) {
        self.applied += sub.applied;
        self.delta_searches += sub.delta_searches;
        self.full_searches += sub.full_searches;
        self.skipped_searches += sub.skipped_searches;
        self.delta_probed_rows += sub.delta_probed_rows;
        self.delta_skipped_rows += sub.delta_skipped_rows;
    }
}

/// A shared, thread-safe cancellation flag. Cloning hands out another
/// handle to the same flag; any holder may call [`CancelToken::cancel`]
/// (idempotent) and every saturation run carrying the token in its
/// [`Budget`] stops at the next rule-search boundary — the same safe
/// stopping points the deadline uses, so the e-graph is always left
/// rebuilt and valid and extraction proceeds on the best-so-far graph.
/// The first `cancel` call's timestamp is recorded so observers can
/// measure cancellation latency (request → worker freed).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    at: Mutex<Option<Instant>>,
}

impl CancelToken {
    /// A fresh, un-tripped token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; the first call's timestamp is
    /// kept. The timestamp is published before the flag flips, so a run
    /// that observes [`CancelToken::is_cancelled`] can always read a
    /// `Some` from [`CancelToken::cancelled_at`].
    pub fn cancel(&self) {
        {
            let mut at = self.inner.at.lock().unwrap();
            if at.is_none() {
                *at = Some(Instant::now());
            }
        }
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested. A single atomic load —
    /// cheap enough to poll on every rule-search tick.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// When cancellation was first requested, if it has been.
    #[must_use]
    pub fn cancelled_at(&self) -> Option<Instant> {
        *self.inner.at.lock().unwrap()
    }
}

/// Saturation budgets beyond the iteration/node caps: an absolute
/// wall-clock deadline, a cap on total applied matches, and an optional
/// cooperative [`CancelToken`]. Hitting any of them stops the run between
/// rule searches — after the pass's rebuild — so the e-graph is always
/// left valid and extraction proceeds on the best-so-far graph.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Absolute deadline. An `Instant` rather than a `Duration` so one
    /// budget can span several runs (e.g. every per-leaf run of one
    /// compile call shares the same deadline).
    pub deadline: Option<Instant>,
    /// Maximum total matches applied across the run.
    pub match_budget: Option<usize>,
    /// Cooperative cancellation: polled (one atomic load) at every
    /// rule-search boundary, so an external holder — e.g. a service
    /// caller dropping its ticket — aborts the run mid-saturation.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// The unbounded budget.
    #[must_use]
    pub fn none() -> Self {
        Budget::default()
    }

    /// Component-wise minimum of two budgets: the earlier deadline, the
    /// smaller match cap. A cancel token from either side is kept
    /// (`self`'s wins when both carry one).
    #[must_use]
    pub fn tighten(self, other: Budget) -> Budget {
        fn min_opt<T: Ord>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            }
        }
        Budget {
            deadline: min_opt(self.deadline, other.deadline),
            match_budget: min_opt(self.match_budget, other.match_budget),
            cancel: self.cancel.or(other.cancel),
        }
    }

    /// Attaches a [`CancelToken`] (replacing any already present).
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Budget {
        self.cancel = Some(token);
        self
    }
}

/// Budget ticks (rule searches) between real clock reads. `Instant::now`
/// costs tens of nanoseconds while one rule search costs microseconds, so
/// a short stride keeps the deadline check unmeasurable while bounding
/// overshoot to a fraction of one scheduler iteration (each iteration
/// additionally forces an unamortized check).
const DEADLINE_STRIDE: u32 = 16;

/// Amortized budget enforcement for one saturation run: counts applied
/// matches exactly, reads the real clock every [`DEADLINE_STRIDE`] ticks.
#[derive(Debug)]
struct BudgetClock {
    budget: Budget,
    ticks: u32,
    applied: usize,
    deadline_hit: bool,
    match_budget_hit: bool,
    cancelled: bool,
}

impl BudgetClock {
    fn new(budget: Budget) -> Self {
        BudgetClock {
            budget,
            ticks: 0,
            applied: 0,
            deadline_hit: false,
            match_budget_hit: false,
            cancelled: false,
        }
    }

    /// Accounts the matches one rule applied; trips the match budget.
    fn note_applied(&mut self, n: usize) {
        self.applied += n;
        if let Some(cap) = self.budget.match_budget {
            if self.applied >= cap {
                self.match_budget_hit = true;
            }
        }
    }

    /// Amortized pre-search check; returns whether the run must stop.
    /// The cancel token is polled on *every* tick — one atomic load is
    /// cheaper than a clock read, and responsiveness is the whole point
    /// of cancellation — while the deadline keeps its amortized stride.
    fn tick(&mut self) -> bool {
        self.poll_cancel();
        if self.exhausted() {
            return true;
        }
        if self.budget.deadline.is_some() {
            self.ticks += 1;
            if self.ticks >= DEADLINE_STRIDE {
                self.ticks = 0;
                self.check_now();
            }
        }
        self.exhausted()
    }

    /// Unamortized deadline + cancellation check (free when neither is
    /// set); run once per scheduler iteration to bound overshoot.
    fn check_now(&mut self) {
        if let Some(deadline) = self.budget.deadline {
            if Instant::now() >= deadline {
                self.deadline_hit = true;
            }
        }
        self.poll_cancel();
    }

    fn poll_cancel(&mut self) {
        if !self.cancelled {
            if let Some(token) = &self.budget.cancel {
                self.cancelled = token.is_cancelled();
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.deadline_hit || self.match_budget_hit || self.cancelled
    }

    fn stamp(&self, report: &mut RunReport) {
        report.deadline_hit |= self.deadline_hit;
        report.match_budget_hit |= self.match_budget_hit;
        report.cancelled |= self.cancelled;
    }
}

/// Per-rule delta-search bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
struct RuleState {
    /// Epoch recorded right after this rule's last search; classes
    /// modified at or after it must be re-probed.
    last_epoch: u64,
    /// Relation change tick at the last search; tuples changed after it
    /// feed the semi-naive relation-atom rounds.
    last_rel_tick: u64,
    /// Relations version at the last search; for rules with impure guards
    /// a change forces a full search (the guard may read relation state
    /// the query does not mention).
    last_rel_version: u64,
    /// Whether the rule has searched at all yet.
    ran_before: bool,
}

/// Delta cutoffs that let a restored, saturated e-graph **warm-start**
/// saturation: instead of first-run full searches, every rule begins as
/// if it had just searched the snapshotted graph, so only the semi-naive
/// delta for material added *after* the restore is evaluated.
///
/// Capture with [`WarmStart::capture`] on the restored graph **before**
/// encoding anything new into it; run with [`Runner::run_phased_warm`].
/// Sound only when the snapshot was taken from a *saturated* run under
/// the **same rule set**: warm rules never re-search the quiet region, so
/// any match missing there would stay missing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmStart {
    /// Modification-epoch cutoff: classes stamped at or after it are
    /// re-probed (everything encoded after [`WarmStart::capture`] stamps
    /// at exactly this epoch or later).
    pub epoch: u64,
    /// Relation change-tick cutoff for the semi-naive relation rounds.
    pub rel_tick: u64,
    /// Relation version at capture; growth past it sends impure-guard
    /// rules through the usual full-search safety net.
    pub rel_version: u64,
}

impl WarmStart {
    /// Records warm-start cutoffs on a restored graph, advancing the
    /// epoch clock first — mirroring the scheduler's own cutoff
    /// recording — so that everything encoded from now on stamps at or
    /// after the returned epoch and is therefore visible to every warm
    /// rule's first delta probe.
    pub fn capture<L: Language, N: Analysis<L>>(egraph: &mut EGraph<L, N>) -> Self {
        let epoch = egraph.bump_epoch();
        WarmStart {
            epoch,
            rel_tick: egraph.relations.tick(),
            rel_version: egraph.relations.version(),
        }
    }

    /// The per-rule state a warm run seeds every rule with: "ran before,
    /// at these cutoffs".
    fn seed(self) -> RuleState {
        RuleState {
            last_epoch: self.epoch,
            last_rel_tick: self.rel_tick,
            last_rel_version: self.rel_version,
            ran_before: true,
        }
    }
}

/// Limits and phase driver for saturation.
#[derive(Debug, Clone)]
pub struct Runner {
    /// Maximum outer iterations for fixpoint phases.
    pub max_iterations: usize,
    /// Stop when the graph exceeds this many e-nodes.
    pub node_limit: usize,
    /// Wall-clock budget applied to each run this runner starts
    /// (converted to an absolute deadline at run entry). Callers that
    /// need one deadline across several runs pass an absolute [`Budget`]
    /// to the `*_budgeted` entry points instead.
    pub time_budget: Option<Duration>,
    /// Cap on total matches applied per run.
    pub match_budget: Option<usize>,
    /// Search with the retained naive reference matcher instead of the
    /// indexed/delta path (for benchmarking and cross-checking; the match
    /// sets are identical, only the time spent differs).
    pub use_naive_matcher: bool,
    /// Run delta probes against the retained per-class epochs instead of
    /// the op-keyed rows (the pre-op-keying A/B baseline, kept the same
    /// way the naive matcher is; identical match sets, broader probes —
    /// the difference shows in [`RunReport::delta_probed_rows`]).
    pub use_per_class_deltas: bool,
    /// Threads for parallel rule *search* (see the crate docs' parallel
    /// section): each run owns a [`SearchPool`] of this many threads and
    /// partitions large root enumerations across it; match application
    /// stays serial and deterministically ordered, so reports, graphs and
    /// extraction are byte-identical to the serial run. `1` (the default)
    /// never touches the pool; the naive matcher ignores this knob.
    pub search_threads: usize,
    /// A pre-built [`SearchPool`] shared across runs. When set (and its
    /// thread count matches [`Runner::search_threads`]), every run this
    /// runner starts scatters onto it instead of spawning a fresh pool —
    /// a session compiling many programs pays the thread-spawn cost once.
    /// Ignored (a private pool is built per run) on a thread-count
    /// mismatch, so a stale handle can degrade performance but never
    /// change behavior.
    pub shared_pool: Option<Arc<SearchPool>>,
    /// Opt-in profiling callbacks at rule-search boundaries (see the
    /// module docs). `None` (the default) keeps every hook site down to
    /// one branch. Excluded from cache policy fingerprints like the
    /// thread knobs: a sink observes a run but never changes it.
    pub profile_sink: Option<ProfileHandle>,
    /// Deterministic fault plan for chaos testing (see [`crate::fault`]);
    /// shared so one plan's one-shot counters span every run it observes.
    #[cfg(feature = "fault-injection")]
    pub fault_plan: Option<std::sync::Arc<crate::fault::FaultPlan>>,
}

impl Default for Runner {
    fn default() -> Self {
        Runner {
            max_iterations: 32,
            node_limit: 500_000,
            time_budget: None,
            match_budget: None,
            use_naive_matcher: false,
            use_per_class_deltas: false,
            search_threads: 1,
            shared_pool: None,
            profile_sink: None,
            #[cfg(feature = "fault-injection")]
            fault_plan: None,
        }
    }
}

/// One saturation run's parallel-search state: the worker pool plus one
/// scratch arena per pool thread (chunk *i* of every partitioned search
/// uses scratch *i*; the scheduler's own scratch keeps the probe
/// counters).
struct ParallelSearch {
    pool: Arc<SearchPool>,
    scratches: Vec<MatchScratch>,
}

impl ParallelSearch {
    fn new(pool: Arc<SearchPool>) -> Self {
        let scratches = (0..pool.threads()).map(|_| MatchScratch::new()).collect();
        ParallelSearch { pool, scratches }
    }
}

impl Runner {
    /// A runner with custom limits.
    #[must_use]
    pub fn new(max_iterations: usize, node_limit: usize) -> Self {
        Runner {
            max_iterations,
            node_limit,
            ..Runner::default()
        }
    }

    /// Sets a per-run wall-clock budget.
    #[must_use]
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Sets a per-run applied-match budget.
    #[must_use]
    pub fn with_match_budget(mut self, budget: usize) -> Self {
        self.match_budget = Some(budget);
        self
    }

    /// Installs a deterministic fault plan (chaos testing only).
    #[cfg(feature = "fault-injection")]
    #[must_use]
    pub fn with_fault_plan(mut self, plan: std::sync::Arc<crate::fault::FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// This runner's own budgets as an absolute [`Budget`] anchored at
    /// the current instant.
    #[must_use]
    pub fn budget_from_now(&self) -> Budget {
        Budget {
            deadline: self.time_budget.map(|d| Instant::now() + d),
            match_budget: self.match_budget,
            cancel: None,
        }
    }

    /// Flips the runner onto the naive reference matcher.
    #[must_use]
    pub fn with_naive_matcher(mut self, naive: bool) -> Self {
        self.use_naive_matcher = naive;
        self
    }

    /// Flips the runner onto the retained per-class delta baseline.
    #[must_use]
    pub fn with_per_class_deltas(mut self, per_class: bool) -> Self {
        self.use_per_class_deltas = per_class;
        self
    }

    /// Sets the parallel-search thread count (clamped to at least 1).
    #[must_use]
    pub fn with_search_threads(mut self, threads: usize) -> Self {
        self.search_threads = threads.max(1);
        self
    }

    /// Installs a pre-built shared [`SearchPool`] for this runner's runs
    /// (see [`Runner::shared_pool`]).
    #[must_use]
    pub fn with_shared_pool(mut self, pool: Arc<SearchPool>) -> Self {
        self.shared_pool = Some(pool);
        self
    }

    /// Installs a profiling sink (see [`Runner::profile_sink`]).
    #[must_use]
    pub fn with_profile_sink(mut self, sink: Arc<dyn hb_obs::ProfileSink>) -> Self {
        self.profile_sink = Some(ProfileHandle::new(sink));
        self
    }

    /// The parallel-search state for one run, when the knobs call for it:
    /// the shared pool when one is installed with a matching thread
    /// count, a freshly spawned private pool otherwise.
    fn parallel_search(&self) -> Option<ParallelSearch> {
        (self.search_threads > 1 && !self.use_naive_matcher).then(|| {
            let pool = match &self.shared_pool {
                Some(pool) if pool.threads() == self.search_threads => Arc::clone(pool),
                _ => Arc::new(SearchPool::new(self.search_threads)),
            };
            ParallelSearch::new(pool)
        })
    }

    /// The change-tracking granularity this runner's delta probes read.
    #[must_use]
    pub fn delta_tracking(&self) -> DeltaTracking {
        if self.use_per_class_deltas {
            DeltaTracking::PerClass
        } else {
            DeltaTracking::OpKeyed
        }
    }

    /// Runs every rule once, then rebuilds. Returns matches applied.
    /// Full (non-delta) searches; the scheduler-internal path threads
    /// per-rule delta state instead.
    pub fn run_once<L: Language, N: Analysis<L>>(
        egraph: &mut EGraph<L, N>,
        rules: &[Rewrite<L, N>],
    ) -> usize {
        let mut applied = 0;
        for rule in rules {
            applied += rule.run(egraph);
        }
        egraph.rebuild();
        applied
    }

    /// One pass over `rules` with delta bookkeeping, then a rebuild.
    /// Returns the matches applied; search-mode counters accumulate into
    /// `report`.
    #[allow(clippy::too_many_arguments)]
    fn run_iter<L: Language, N: Analysis<L>>(
        &self,
        egraph: &mut EGraph<L, N>,
        rules: &[Rewrite<L, N>],
        states: &mut [RuleState],
        scratch: &mut MatchScratch,
        par: &mut Option<ParallelSearch>,
        clock: &mut BudgetClock,
        report: &mut RunReport,
    ) -> usize
    where
        N::Data: Sync,
    {
        debug_assert_eq!(rules.len(), states.len());
        let mut applied = 0;
        for (rule, state) in rules.iter().zip(states.iter_mut()) {
            // Budget check between rule searches: breaking here (instead
            // of returning) still drains the probe counters and rebuilds
            // below, so a truncated pass leaves the graph valid.
            if clock.tick() {
                break;
            }
            #[cfg(feature = "fault-injection")]
            if let Some(plan) = &self.fault_plan {
                plan.on_search(&rule.name);
            }
            // The profile hook's "absence is free" contract: no clock
            // reads and no per-rule counter drains unless a sink is
            // installed.
            let search_started = self.profile_sink.as_ref().map(|_| Instant::now());
            if self.use_naive_matcher {
                let n = rule.run_naive(egraph);
                applied += n;
                clock.note_applied(n);
                if let (Some(sink), Some(started)) = (&self.profile_sink, search_started) {
                    sink.on_rule_search(&RuleSearchSample {
                        rule: &rule.name,
                        probed_rows: 0,
                        matches: n,
                        duration: started.elapsed(),
                    });
                }
                continue;
            }
            if !egraph.is_clean() {
                egraph.rebuild();
            }
            let rel_version = egraph.relations.version();
            // Quiescence skip: a pure rule sees only its matched classes
            // and relation atoms; if neither classes nor relations changed
            // since it last ran, it would find the same matches and its
            // (idempotent) application would change nothing — skip it.
            if rule.is_known_pure()
                && state.ran_before
                && state.last_rel_version == rel_version
                && !egraph.any_modified_since(state.last_epoch)
            {
                report.skipped_searches += 1;
                continue;
            }
            // Delta search is sound for every query shape (single-root
            // probe or semi-naive rounds); the only holdout is a rule with
            // an impure guard after relation growth, whose guard may now
            // accept matches the delta cannot re-surface.
            let delta_ok =
                state.ran_before && (rule.is_known_pure() || state.last_rel_version == rel_version);
            let epoch_cutoff = state.last_epoch;
            let rel_cutoff = state.last_rel_tick;
            // Record the next cutoffs *before* applying so this rule's own
            // unions and tuple inserts are re-probed on its next run.
            let searched_at = egraph.bump_epoch();
            let rel_tick_at = egraph.relations.tick();
            let mut ctx = par.as_mut().map(|p| ParallelCtx {
                pool: &p.pool,
                scratches: &mut p.scratches[..],
            });
            let n = if delta_ok {
                report.delta_searches += 1;
                rule.run_delta_ctx(
                    egraph,
                    epoch_cutoff,
                    rel_cutoff,
                    self.delta_tracking(),
                    scratch,
                    ctx.as_mut(),
                )
            } else {
                report.full_searches += 1;
                rule.run_with_ctx(egraph, scratch, ctx.as_mut())
            };
            applied += n;
            clock.note_applied(n);
            state.last_epoch = searched_at;
            state.last_rel_tick = rel_tick_at;
            state.last_rel_version = rel_version;
            state.ran_before = true;
            if let (Some(sink), Some(started)) = (&self.profile_sink, search_started) {
                // Draining the scratch's probe counters per rule (instead
                // of once per pass below) attributes rows to the rule that
                // probed them; the report totals are identical either way.
                let (probed, skipped) = scratch.take_probe_counters();
                report.delta_probed_rows += probed;
                report.delta_skipped_rows += skipped;
                sink.on_rule_search(&RuleSearchSample {
                    rule: &rule.name,
                    probed_rows: probed,
                    matches: n,
                    duration: started.elapsed(),
                });
            }
        }
        let (probed, skipped) = scratch.take_probe_counters();
        report.delta_probed_rows += probed;
        report.delta_skipped_rows += skipped;
        let rebuild_started = self.profile_sink.as_ref().map(|_| Instant::now());
        egraph.rebuild();
        if let (Some(sink), Some(started)) = (&self.profile_sink, rebuild_started) {
            sink.on_rebuild(started.elapsed());
        }
        applied
    }

    /// Runs the rules to saturation (or the iteration/node limit, or the
    /// runner's own time/match budgets).
    pub fn run_to_fixpoint<L: Language, N: Analysis<L>>(
        &self,
        egraph: &mut EGraph<L, N>,
        rules: &[Rewrite<L, N>],
    ) -> RunReport
    where
        N::Data: Sync,
    {
        self.run_to_fixpoint_budgeted(egraph, rules, self.budget_from_now())
    }

    /// [`Runner::run_to_fixpoint`] under an explicit absolute [`Budget`]
    /// (tightened by the runner's own budgets). Truncation leaves the
    /// graph rebuilt and valid; [`RunReport::deadline_hit`] /
    /// [`RunReport::match_budget_hit`] record which budget fired.
    pub fn run_to_fixpoint_budgeted<L: Language, N: Analysis<L>>(
        &self,
        egraph: &mut EGraph<L, N>,
        rules: &[Rewrite<L, N>],
        budget: Budget,
    ) -> RunReport
    where
        N::Data: Sync,
    {
        let mut states = vec![RuleState::default(); rules.len()];
        let mut scratch = MatchScratch::new();
        let mut par = self.parallel_search();
        let mut clock = BudgetClock::new(budget.tighten(self.budget_from_now()));
        let mut report = self.fixpoint_with_states(
            egraph,
            rules,
            &mut states,
            &mut scratch,
            &mut par,
            &mut clock,
            true,
        );
        clock.stamp(&mut report);
        report
    }

    #[allow(clippy::too_many_arguments)]
    fn fixpoint_with_states<L: Language, N: Analysis<L>>(
        &self,
        egraph: &mut EGraph<L, N>,
        rules: &[Rewrite<L, N>],
        states: &mut [RuleState],
        scratch: &mut MatchScratch,
        par: &mut Option<ParallelSearch>,
        clock: &mut BudgetClock,
        _inject_faults: bool,
    ) -> RunReport
    where
        N::Data: Sync,
    {
        let start = Instant::now();
        let mut report = RunReport::default();
        for _ in 0..self.max_iterations {
            clock.check_now();
            if clock.exhausted() {
                break;
            }
            #[cfg(feature = "fault-injection")]
            if _inject_faults && self.inject_iteration_fault(clock, &mut report) {
                break;
            }
            report.iterations += 1;
            let relations_before = egraph.relations.version();
            let applied = self.run_iter(egraph, rules, states, scratch, par, clock, &mut report);
            let relations_changed = egraph.relations.version() != relations_before;
            report.applied += applied;
            if applied == 0 && !relations_changed && !clock.exhausted() {
                report.saturated = true;
                break;
            }
            if egraph.num_nodes() > self.node_limit {
                report.node_limit_hit = true;
                break;
            }
        }
        report.nodes = egraph.num_nodes();
        report.classes = egraph.num_classes();
        report.elapsed = start.elapsed();
        report
    }

    /// Resolves an iteration-level fault against the budgets actually in
    /// force, so injected stops never claim a budget that was not
    /// configured. Returns whether the run must stop.
    #[cfg(feature = "fault-injection")]
    fn inject_iteration_fault(&self, clock: &mut BudgetClock, report: &mut RunReport) -> bool {
        use crate::fault::InjectedStop;
        let Some(plan) = &self.fault_plan else {
            return false;
        };
        match plan.on_iteration(
            clock.budget.deadline.is_some(),
            clock.budget.match_budget.is_some(),
        ) {
            Some(InjectedStop::Deadline) => {
                clock.deadline_hit = true;
                true
            }
            Some(InjectedStop::NodeLimit) => {
                report.node_limit_hit = true;
                true
            }
            Some(InjectedStop::MatchBudget) => {
                clock.match_budget_hit = true;
                true
            }
            None => false,
        }
    }

    /// The paper's phased schedule: `outer_iters` rounds of the main rules,
    /// with the supporting rules saturated before the first round and after
    /// every round. Delta state persists across rounds, so a supporting
    /// fixpoint over an unchanged graph is near-free; one scratch arena
    /// serves both rule sets for the whole run.
    pub fn run_phased<L: Language, N: Analysis<L>>(
        &self,
        egraph: &mut EGraph<L, N>,
        main_rules: &[Rewrite<L, N>],
        supporting_rules: &[Rewrite<L, N>],
        outer_iters: usize,
    ) -> RunReport
    where
        N::Data: Sync,
    {
        self.run_phased_budgeted(
            egraph,
            main_rules,
            supporting_rules,
            outer_iters,
            self.budget_from_now(),
        )
    }

    /// [`Runner::run_phased`] under an explicit absolute [`Budget`]
    /// (tightened by the runner's own budgets). The budget is enforced
    /// between rule searches with an amortized clock check plus one
    /// unamortized check per outer round, so overshoot is bounded by one
    /// iteration; the graph is always left rebuilt and valid.
    pub fn run_phased_budgeted<L: Language, N: Analysis<L>>(
        &self,
        egraph: &mut EGraph<L, N>,
        main_rules: &[Rewrite<L, N>],
        supporting_rules: &[Rewrite<L, N>],
        outer_iters: usize,
        budget: Budget,
    ) -> RunReport
    where
        N::Data: Sync,
    {
        self.run_phased_seeded(
            egraph,
            main_rules,
            supporting_rules,
            outer_iters,
            budget,
            RuleState::default(),
        )
    }

    /// [`Runner::run_phased_budgeted`] warm-started from a restored,
    /// saturated snapshot: every rule's delta state is seeded with the
    /// [`WarmStart`] cutoffs, so the first pass probes only classes and
    /// relation tuples changed since the capture (the leaves encoded
    /// after the restore) instead of re-searching the whole graph.
    ///
    /// Byte-identity with the cold run rests on the same invariants as
    /// every other delta path — semi-naive completeness plus
    /// content-based extraction tie-breaks — and holds only when the
    /// snapshot came from a **saturated** run of the **same rules**.
    pub fn run_phased_warm<L: Language, N: Analysis<L>>(
        &self,
        egraph: &mut EGraph<L, N>,
        main_rules: &[Rewrite<L, N>],
        supporting_rules: &[Rewrite<L, N>],
        outer_iters: usize,
        budget: Budget,
        warm: WarmStart,
    ) -> RunReport
    where
        N::Data: Sync,
    {
        self.run_phased_seeded(
            egraph,
            main_rules,
            supporting_rules,
            outer_iters,
            budget,
            warm.seed(),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run_phased_seeded<L: Language, N: Analysis<L>>(
        &self,
        egraph: &mut EGraph<L, N>,
        main_rules: &[Rewrite<L, N>],
        supporting_rules: &[Rewrite<L, N>],
        outer_iters: usize,
        budget: Budget,
        seed: RuleState,
    ) -> RunReport
    where
        N::Data: Sync,
    {
        let start = Instant::now();
        let mut report = RunReport::default();
        let mut main_states = vec![seed; main_rules.len()];
        let mut support_states = vec![seed; supporting_rules.len()];
        let mut scratch = MatchScratch::new();
        let mut par = self.parallel_search();
        let mut clock = BudgetClock::new(budget.tighten(self.budget_from_now()));
        let support = self.fixpoint_with_states(
            egraph,
            supporting_rules,
            &mut support_states,
            &mut scratch,
            &mut par,
            &mut clock,
            false,
        );
        report.absorb(&support);
        for _ in 0..outer_iters {
            clock.check_now();
            if clock.exhausted() {
                break;
            }
            #[cfg(feature = "fault-injection")]
            if self.inject_iteration_fault(&mut clock, &mut report) {
                break;
            }
            report.iterations += 1;
            let applied = self.run_iter(
                egraph,
                main_rules,
                &mut main_states,
                &mut scratch,
                &mut par,
                &mut clock,
                &mut report,
            );
            report.applied += applied;
            if clock.exhausted() {
                break;
            }
            let support = self.fixpoint_with_states(
                egraph,
                supporting_rules,
                &mut support_states,
                &mut scratch,
                &mut par,
                &mut clock,
                false,
            );
            report.absorb(&support);
            if clock.exhausted() {
                break;
            }
            if applied == 0 && support.applied == 0 {
                report.saturated = true;
                break;
            }
            if egraph.num_nodes() > self.node_limit {
                report.node_limit_hit = true;
                break;
            }
        }
        report.nodes = egraph.num_nodes();
        report.classes = egraph.num_classes();
        report.elapsed = start.elapsed();
        clock.stamp(&mut report);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math_lang::{n, pdiv, pmul, pvar, Math};
    use crate::rewrite::Query;

    type EG = EGraph<Math, ()>;

    fn fig1_rules() -> Vec<Rewrite<Math>> {
        vec![
            Rewrite::rewrite(
                "assoc",
                pdiv(pmul(pvar("a"), pvar("b")), pvar("c")),
                pmul(pvar("a"), pdiv(pvar("b"), pvar("c"))),
            ),
            Rewrite::rewrite("div-self", pdiv(n(2), n(2)), n(1)),
            Rewrite::rewrite("mul-one", pmul(pvar("a"), n(1)), pvar("a")),
        ]
    }

    fn fig1_graph() -> (EG, crate::unionfind::Id, crate::unionfind::Id) {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let d = eg.add(Math::Div([m, two]));
        (eg, a, d)
    }

    #[test]
    fn fixpoint_saturates_and_reports() {
        let (mut eg, a, d) = fig1_graph();
        let rules = fig1_rules();
        let report = Runner::default().run_to_fixpoint(&mut eg, &rules);
        assert!(report.saturated);
        assert!(report.iterations >= 2);
        assert_eq!(eg.find(d), eg.find(a));
        assert!(report.nodes > 0 && report.classes > 0);
    }

    #[test]
    fn naive_matcher_reaches_the_same_fixpoint() {
        let (mut eg_fast, a1, d1) = fig1_graph();
        let (mut eg_naive, a2, d2) = fig1_graph();
        let fast = Runner::default().run_to_fixpoint(&mut eg_fast, &fig1_rules());
        let naive = Runner::default()
            .with_naive_matcher(true)
            .run_to_fixpoint(&mut eg_naive, &fig1_rules());
        assert!(fast.saturated && naive.saturated);
        assert_eq!(fast.nodes, naive.nodes);
        assert_eq!(fast.classes, naive.classes);
        assert_eq!(eg_fast.find(d1), eg_fast.find(a1));
        assert_eq!(eg_naive.find(d2), eg_naive.find(a2));
    }

    /// A rule that keeps minting fresh literals can never saturate
    /// (hash-consing tames mere term growth, so grow payloads instead).
    fn successor_rule() -> Rewrite<Math> {
        Rewrite::<Math>::rule(
            "successor",
            Query::single("e", pvar("e")),
            Box::new(|eg, s| {
                let id = crate::rewrite::bound(s, "e");
                let v = eg.class(id).nodes.iter().find_map(|n| match n {
                    Math::Num(v) => Some(*v),
                    _ => None,
                });
                match v {
                    Some(v) => {
                        let before = eg.num_nodes();
                        eg.add(Math::Num(v + 1));
                        eg.num_nodes() > before
                    }
                    None => false,
                }
            }),
        )
    }

    #[test]
    fn node_limit_stops_explosion() {
        let mut eg = EG::new();
        let _ = eg.add(Math::Num(0));
        let runner = Runner::new(1000, 50);
        let report = runner.run_to_fixpoint(&mut eg, &[successor_rule()]);
        assert!(report.node_limit_hit);
        assert!(report.truncated());
        assert!(!report.saturated);
    }

    #[test]
    fn time_budget_stops_unsaturating_run() {
        let mut eg = EG::new();
        let _ = eg.add(Math::Num(0));
        let runner = Runner::new(usize::MAX, usize::MAX).with_time_budget(Duration::from_millis(5));
        let report = runner.run_to_fixpoint(&mut eg, &[successor_rule()]);
        assert!(report.deadline_hit);
        assert!(report.truncated());
        assert!(!report.saturated);
        // The truncated graph is rebuilt and consistent.
        assert_eq!(report.nodes, eg.num_nodes());
    }

    #[test]
    fn expired_deadline_stops_before_any_iteration() {
        let mut eg = EG::new();
        let _ = eg.add(Math::Num(0));
        let budget = Budget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..Budget::none()
        };
        let runner = Runner::new(1000, usize::MAX);
        let report = runner.run_to_fixpoint_budgeted(&mut eg, &[successor_rule()], budget);
        assert!(report.deadline_hit);
        assert_eq!(report.iterations, 0);
        assert!(!report.saturated, "a budget stop must not claim saturation");
    }

    #[test]
    fn match_budget_stops_run() {
        let mut eg = EG::new();
        let _ = eg.add(Math::Num(0));
        let runner = Runner::new(1000, usize::MAX).with_match_budget(7);
        let report = runner.run_to_fixpoint(&mut eg, &[successor_rule()]);
        assert!(report.match_budget_hit);
        assert!(!report.deadline_hit);
        assert!(report.applied >= 7, "stops only once the budget is spent");
        assert!(report.applied <= 8, "per-rule accounting bounds overshoot");
    }

    #[test]
    fn generous_budgets_do_not_change_saturation() {
        let (mut eg, a, d) = fig1_graph();
        let runner = Runner::default()
            .with_time_budget(Duration::from_secs(3600))
            .with_match_budget(1_000_000);
        let report = runner.run_to_fixpoint(&mut eg, &fig1_rules());
        assert!(report.saturated);
        assert!(!report.truncated());
        assert_eq!(eg.find(d), eg.find(a));
    }

    #[test]
    fn phased_run_respects_absolute_deadline() {
        let mut eg = EG::new();
        let _ = eg.add(Math::Num(0));
        let budget = Budget {
            deadline: Some(Instant::now()),
            ..Budget::none()
        };
        let runner = Runner::new(1000, usize::MAX);
        let report = runner.run_phased_budgeted(&mut eg, &[successor_rule()], &[], 1000, budget);
        assert!(report.deadline_hit);
        assert!(!report.saturated);
    }

    #[test]
    fn budget_tighten_takes_component_minima() {
        let early = Instant::now();
        let late = early + Duration::from_secs(60);
        let a = Budget {
            deadline: Some(late),
            ..Budget::none()
        };
        let b = Budget {
            deadline: Some(early),
            match_budget: Some(10),
            ..Budget::none()
        };
        let t = a.tighten(b);
        assert_eq!(t.deadline, Some(early));
        assert_eq!(t.match_budget, Some(10));
        let n = Budget::none().tighten(Budget::none());
        assert!(n.deadline.is_none() && n.match_budget.is_none());
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_iteration() {
        let mut eg = EG::new();
        let _ = eg.add(Math::Num(0));
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::none().with_cancel(token.clone());
        let runner = Runner::new(1000, usize::MAX);
        let report = runner.run_to_fixpoint_budgeted(&mut eg, &[successor_rule()], budget);
        assert!(report.cancelled);
        assert!(report.truncated());
        assert_eq!(report.iterations, 0);
        assert!(
            !report.saturated,
            "a cancelled run must not claim saturation"
        );
        assert!(token.cancelled_at().is_some());
    }

    #[test]
    fn cancel_from_another_thread_stops_unbounded_run() {
        let mut eg = EG::new();
        let _ = eg.add(Math::Num(0));
        let token = CancelToken::new();
        let remote = token.clone();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            remote.cancel();
        });
        // Unbounded iterations and no deadline: this run terminates if and
        // only if the token aborts it.
        let budget = Budget::none().with_cancel(token);
        let runner = Runner::new(usize::MAX, usize::MAX);
        let report = runner.run_to_fixpoint_budgeted(&mut eg, &[successor_rule()], budget);
        canceller.join().unwrap();
        assert!(report.cancelled);
        assert!(!report.deadline_hit && !report.match_budget_hit);
        assert!(!report.saturated);
        // The cancelled graph is rebuilt and consistent.
        assert_eq!(report.nodes, eg.num_nodes());
    }

    #[test]
    fn untripped_token_does_not_change_saturation() {
        let (mut eg, a, d) = fig1_graph();
        let budget = Budget::none().with_cancel(CancelToken::new());
        let report = Runner::default().run_to_fixpoint_budgeted(&mut eg, &fig1_rules(), budget);
        assert!(report.saturated);
        assert!(!report.truncated());
        assert_eq!(eg.find(d), eg.find(a));
    }

    /// A left-deep product chain wide enough (> `PARALLEL_MIN_ROOTS`
    /// Mul-rooted classes) that parallel search actually partitions.
    fn wide_mul_chain(len: usize) -> (EG, crate::unionfind::Id) {
        let mut eg = EG::new();
        let mut acc = eg.add(Math::Sym("s0".into()));
        for i in 1..len {
            let s = eg.add(Math::Sym(format!("s{i}")));
            acc = eg.add(Math::Mul([acc, s]));
        }
        (eg, acc)
    }

    fn mul_rules() -> Vec<Rewrite<Math>> {
        vec![
            Rewrite::rewrite(
                "comm-mul",
                pmul(pvar("x"), pvar("y")),
                pmul(pvar("y"), pvar("x")),
            ),
            Rewrite::rewrite(
                "assoc-mul",
                pmul(pmul(pvar("a"), pvar("b")), pvar("c")),
                pmul(pvar("a"), pmul(pvar("b"), pvar("c"))),
            ),
        ]
    }

    /// Satellite invariant: parallel search is byte-invisible. Reports
    /// (every counter, including the delta probed/skipped rows), graph
    /// sizes and the extracted term must all match the serial run exactly
    /// — only `elapsed` may differ.
    #[test]
    fn parallel_search_is_byte_identical_to_serial() {
        use crate::extract::{AstSize, WorklistExtractor};
        for threads in [2, 3] {
            let (mut eg_serial, root_s) = wide_mul_chain(80);
            let (mut eg_par, root_p) = wide_mul_chain(80);
            let runner = Runner::new(3, 1_000_000);
            let mut serial = runner.run_to_fixpoint(&mut eg_serial, &mul_rules());
            let mut par = runner
                .with_search_threads(threads)
                .run_to_fixpoint(&mut eg_par, &mul_rules());
            serial.elapsed = Duration::ZERO;
            par.elapsed = Duration::ZERO;
            assert_eq!(serial, par, "reports must match at {threads} threads");
            let best_s =
                WorklistExtractor::new(&eg_serial, AstSize).extract(eg_serial.find(root_s));
            let best_p = WorklistExtractor::new(&eg_par, AstSize).extract(eg_par.find(root_p));
            assert_eq!(
                best_s.to_sexp(),
                best_p.to_sexp(),
                "extraction must match at {threads} threads"
            );
        }
    }

    /// Tentpole oracle at the scheduler level: a rule whose query is *not*
    /// delta-eligible (fresh-variable second atom) runs its delta as
    /// semi-naive rounds — now partitioned across the pool — and the full
    /// run (every report counter, the derived relation contents) stays
    /// byte-identical to serial at 2 and 4 threads.
    #[test]
    fn parallel_delta_rounds_are_byte_identical_at_runner_level() {
        fn rules() -> Vec<Rewrite<Math>> {
            let mut rules = mul_rules();
            rules.push(Rewrite::<Math>::rule(
                "pair-products",
                Query::single("e", pmul(pvar("x"), pvar("y")))
                    .also("f", pmul(pvar("p"), pvar("q"))),
                Box::new(|eg, s| {
                    let e = crate::rewrite::bound(s, "e");
                    let f = crate::rewrite::bound(s, "f");
                    eg.relations.insert("paired", vec![e, f])
                }),
            ));
            rules
        }
        let (mut eg_serial, _) = wide_mul_chain(80);
        let runner = Runner::new(2, 1_000_000);
        let mut serial = runner.run_to_fixpoint(&mut eg_serial, &rules());
        serial.elapsed = Duration::ZERO;
        assert!(
            eg_serial.relations.len("paired") > 0,
            "the non-eligible rule must actually fire"
        );
        for threads in [2, 4] {
            let (mut eg_par, _) = wide_mul_chain(80);
            let mut par = runner
                .clone()
                .with_search_threads(threads)
                .run_to_fixpoint(&mut eg_par, &rules());
            par.elapsed = Duration::ZERO;
            assert_eq!(serial, par, "reports must match at {threads} threads");
            assert_eq!(
                eg_serial.relations.len("paired"),
                eg_par.relations.len("paired"),
                "derived relations must match at {threads} threads"
            );
        }
    }

    #[test]
    fn phased_schedule_runs_supporting_rules_between_rounds() {
        // Supporting rule derives facts used by the main rule's relation atom.
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let _d = eg.add(Math::Div([m, two]));

        // Supporting: every literal 2 is "even".
        let support = Rewrite::<Math>::rule(
            "two-is-even",
            Query::single("e", n(2)),
            Box::new(|eg, s| {
                let e = crate::rewrite::bound(s, "e");
                eg.relations.insert("even", vec![e])
            }),
        );
        // Main: products by an even number get marked.
        let main = Rewrite::<Math>::rule(
            "mark",
            Query::single("e", pmul(pvar("x"), pvar("y"))).with_relation("even", &["y"]),
            Box::new(|eg, s| {
                let e = crate::rewrite::bound(s, "e");
                eg.relations.insert("marked", vec![e])
            }),
        );
        let report = Runner::default().run_phased(&mut eg, &[main], &[support], 3);
        assert!(report.applied >= 2);
        assert_eq!(eg.relations.len("marked"), 1);
    }
}
