//! Rule scheduling: the paper's §III-D2 strategy.
//!
//! HARDBOILED runs a fixed number of outer iterations of the axiomatic,
//! application-specific and lowering rules, and between each iteration runs
//! the *supporting* rules (type analysis, shape tracking) to a fixpoint —
//! supporting rules always saturate in finitely many steps.

use std::time::{Duration, Instant};

use crate::egraph::{Analysis, EGraph};
use crate::language::Language;
use crate::rewrite::Rewrite;

/// Statistics from a saturation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Outer iterations executed.
    pub iterations: usize,
    /// Total matches that changed the graph.
    pub applied: usize,
    /// E-nodes after the run.
    pub nodes: usize,
    /// E-classes after the run.
    pub classes: usize,
    /// Whether the run stopped because nothing changed.
    pub saturated: bool,
    /// Whether the run stopped because the node limit was hit.
    pub node_limit_hit: bool,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// Limits and phase driver for saturation.
#[derive(Debug, Clone)]
pub struct Runner {
    /// Maximum outer iterations for fixpoint phases.
    pub max_iterations: usize,
    /// Stop when the graph exceeds this many e-nodes.
    pub node_limit: usize,
}

impl Default for Runner {
    fn default() -> Self {
        Runner {
            max_iterations: 32,
            node_limit: 500_000,
        }
    }
}

impl Runner {
    /// A runner with custom limits.
    #[must_use]
    pub fn new(max_iterations: usize, node_limit: usize) -> Self {
        Runner {
            max_iterations,
            node_limit,
        }
    }

    /// Runs every rule once, then rebuilds. Returns matches applied.
    pub fn run_once<L: Language, N: Analysis<L>>(
        egraph: &mut EGraph<L, N>,
        rules: &[Rewrite<L, N>],
    ) -> usize {
        let mut applied = 0;
        for rule in rules {
            applied += rule.run(egraph);
        }
        egraph.rebuild();
        applied
    }

    /// Runs the rules to saturation (or the iteration/node limit).
    pub fn run_to_fixpoint<L: Language, N: Analysis<L>>(
        &self,
        egraph: &mut EGraph<L, N>,
        rules: &[Rewrite<L, N>],
    ) -> RunReport {
        let start = Instant::now();
        let mut report = RunReport::default();
        for _ in 0..self.max_iterations {
            report.iterations += 1;
            let relations_before = egraph.relations.total_tuples();
            let applied = Self::run_once(egraph, rules);
            let relations_changed = egraph.relations.total_tuples() != relations_before;
            report.applied += applied;
            if applied == 0 && !relations_changed {
                report.saturated = true;
                break;
            }
            if egraph.num_nodes() > self.node_limit {
                report.node_limit_hit = true;
                break;
            }
        }
        report.nodes = egraph.num_nodes();
        report.classes = egraph.num_classes();
        report.elapsed = start.elapsed();
        report
    }

    /// The paper's phased schedule: `outer_iters` rounds of the main rules,
    /// with the supporting rules saturated before the first round and after
    /// every round.
    pub fn run_phased<L: Language, N: Analysis<L>>(
        &self,
        egraph: &mut EGraph<L, N>,
        main_rules: &[Rewrite<L, N>],
        supporting_rules: &[Rewrite<L, N>],
        outer_iters: usize,
    ) -> RunReport {
        let start = Instant::now();
        let mut report = RunReport::default();
        let support = self.run_to_fixpoint(egraph, supporting_rules);
        report.applied += support.applied;
        for _ in 0..outer_iters {
            report.iterations += 1;
            let applied = Self::run_once(egraph, main_rules);
            report.applied += applied;
            let support = self.run_to_fixpoint(egraph, supporting_rules);
            report.applied += support.applied;
            if applied == 0 && support.applied == 0 {
                report.saturated = true;
                break;
            }
            if egraph.num_nodes() > self.node_limit {
                report.node_limit_hit = true;
                break;
            }
        }
        report.nodes = egraph.num_nodes();
        report.classes = egraph.num_classes();
        report.elapsed = start.elapsed();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math_lang::{n, pdiv, pmul, pvar, Math};
    use crate::rewrite::Query;

    type EG = EGraph<Math, ()>;

    fn fig1_rules() -> Vec<Rewrite<Math>> {
        vec![
            Rewrite::rewrite(
                "assoc",
                pdiv(pmul(pvar("a"), pvar("b")), pvar("c")),
                pmul(pvar("a"), pdiv(pvar("b"), pvar("c"))),
            ),
            Rewrite::rewrite("div-self", pdiv(n(2), n(2)), n(1)),
            Rewrite::rewrite("mul-one", pmul(pvar("a"), n(1)), pvar("a")),
        ]
    }

    #[test]
    fn fixpoint_saturates_and_reports() {
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let d = eg.add(Math::Div([m, two]));
        let rules = fig1_rules();
        let report = Runner::default().run_to_fixpoint(&mut eg, &rules);
        assert!(report.saturated);
        assert!(report.iterations >= 2);
        assert_eq!(eg.find(d), eg.find(a));
        assert!(report.nodes > 0 && report.classes > 0);
    }

    #[test]
    fn node_limit_stops_explosion() {
        // A rule that keeps minting fresh literals can never saturate
        // (hash-consing tames mere term growth, so grow payloads instead).
        let mut eg = EG::new();
        let _ = eg.add(Math::Num(0));
        let succ = Rewrite::<Math>::rule(
            "successor",
            Query::single("e", pvar("e")),
            Box::new(|eg, s| {
                let id = crate::rewrite::bound(s, "e");
                let v = eg
                    .class(id)
                    .nodes
                    .iter()
                    .find_map(|n| match n {
                        Math::Num(v) => Some(*v),
                        _ => None,
                    });
                match v {
                    Some(v) => {
                        let before = eg.num_nodes();
                        eg.add(Math::Num(v + 1));
                        eg.num_nodes() > before
                    }
                    None => false,
                }
            }),
        );
        let runner = Runner::new(1000, 50);
        let report = runner.run_to_fixpoint(&mut eg, &[succ]);
        assert!(report.node_limit_hit);
        assert!(!report.saturated);
    }

    #[test]
    fn phased_schedule_runs_supporting_rules_between_rounds() {
        // Supporting rule derives facts used by the main rule's relation atom.
        let mut eg = EG::new();
        let a = eg.add(Math::Sym("a".into()));
        let two = eg.add(Math::Num(2));
        let m = eg.add(Math::Mul([a, two]));
        let _d = eg.add(Math::Div([m, two]));

        // Supporting: every literal 2 is "even".
        let support = Rewrite::<Math>::rule(
            "two-is-even",
            Query::single("e", n(2)),
            Box::new(|eg, s| {
                let e = crate::rewrite::bound(s, "e");
                eg.relations.insert("even", vec![e])
            }),
        );
        // Main: products by an even number get marked.
        let main = Rewrite::<Math>::rule(
            "mark",
            Query::single("e", pmul(pvar("x"), pvar("y"))).with_relation("even", &["y"]),
            Box::new(|eg, s| {
                let e = crate::rewrite::bound(s, "e");
                eg.relations.insert("marked", vec![e])
            }),
        );
        let report = Runner::default().run_phased(&mut eg, &[main], &[support], 3);
        assert!(report.applied >= 2);
        assert_eq!(eg.relations.len("marked"), 1);
    }
}
