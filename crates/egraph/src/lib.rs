//! # hb-egraph — equality saturation engine
//!
//! A from-scratch reimplementation of the egg/egglog machinery the paper
//! builds HARDBOILED on: hash-consed [`egraph::EGraph`]s with congruence
//! rebuilding, [`pattern::Pattern`] e-matching, conditional
//! [`rewrite::Rewrite`] rules with egglog-style Datalog
//! [`relation::Relations`], phased [`schedule::Runner`] scheduling
//! (§III-D2), per-class [`egraph::Analysis`] lattices, and cost-based
//! [`extract::Extractor`] term extraction (§III-D3).
//!
//! The engine is generic over a [`language::Language`]; the HARDBOILED
//! tensor language lives in the `hardboiled` crate, and a small arithmetic
//! demo language reproducing the paper's Fig. 1 lives in [`math_lang`].
//!
//! ## Example
//!
//! ```
//! use hb_egraph::egraph::EGraph;
//! use hb_egraph::extract::{AstSize, Extractor};
//! use hb_egraph::math_lang::{n, pdiv, pmul, pvar, Math};
//! use hb_egraph::rewrite::Rewrite;
//! use hb_egraph::schedule::Runner;
//!
//! // Fig. 1: prove (a*2)/2 == a and extract the small form.
//! let mut eg = EGraph::<Math>::new();
//! let a = eg.add(Math::Sym("a".into()));
//! let two = eg.add(Math::Num(2));
//! let m = eg.add(Math::Mul([a, two]));
//! let d = eg.add(Math::Div([m, two]));
//! let rules = vec![
//!     Rewrite::rewrite(
//!         "assoc",
//!         pdiv(pmul(pvar("a"), pvar("b")), pvar("c")),
//!         pmul(pvar("a"), pdiv(pvar("b"), pvar("c"))),
//!     ),
//!     Rewrite::rewrite("div-self", pdiv(n(2), n(2)), n(1)),
//!     Rewrite::rewrite("mul-one", pmul(pvar("a"), n(1)), pvar("a")),
//! ];
//! Runner::default().run_to_fixpoint(&mut eg, &rules);
//! let best = Extractor::new(&eg, AstSize).extract(d);
//! assert_eq!(best.to_sexp(), "a");
//! ```

pub mod egraph;
pub mod extract;
pub mod language;
pub mod math_lang;
pub mod pattern;
pub mod relation;
pub mod rewrite;
pub mod schedule;
pub mod unionfind;

pub use egraph::{Analysis, EClass, EGraph};
pub use extract::{AstSize, CostFunction, Extractor, FnCost};
pub use language::{Language, RecExpr};
pub use pattern::{Pattern, Subst};
pub use relation::Relations;
pub use rewrite::{Atom, Query, Rewrite};
pub use schedule::{RunReport, Runner};
pub use unionfind::{Id, UnionFind};
