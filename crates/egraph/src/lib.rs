//! # hb-egraph — equality saturation engine
//!
//! A from-scratch reimplementation of the egg/egglog machinery the paper
//! builds HARDBOILED on: hash-consed [`egraph::EGraph`]s with congruence
//! rebuilding, [`pattern::Pattern`] e-matching, conditional
//! [`rewrite::Rewrite`] rules with egglog-style Datalog
//! [`relation::Relations`], phased [`schedule::Runner`] scheduling
//! (§III-D2), per-class [`egraph::Analysis`] lattices, and cost-based
//! term extraction (§III-D3) behind the pluggable [`extract::Extract`]
//! strategy API.
//!
//! The engine is generic over a [`language::Language`]; the HARDBOILED
//! tensor language lives in the `hardboiled` crate, and a small arithmetic
//! demo language reproducing the paper's Fig. 1 lives in [`math_lang`].
//!
//! ## Performance design
//!
//! The engine keeps every hot path indexed and incremental (measured
//! ~8x end-to-end saturation speedup over the retained naive reference
//! on ~1.8k-class whole-program workloads; see `BENCH_eqsat.json` at the
//! repo root):
//!
//! * **Interned substitutions.** [`pattern::Pattern::compile`] /
//!   [`rewrite::Query::compile`] intern variables to `u32` slots once;
//!   match-time bindings are dense `Vec<Option<Id>>` slot tables with no
//!   string hashing or per-binding allocation. [`pattern::Subst`] keeps the
//!   string-keyed `get`/`bind` API as a compatibility shim for rule
//!   appliers (a linear scan of the shared name table — patterns bind a
//!   handful of variables).
//!
//! * **Reusable binding buffers.** Match loops draw every binding row and
//!   row list from a [`pattern::MatchScratch`] arena and return dead
//!   buffers to it, so steady-state matching does not allocate per
//!   candidate. The scheduler holds one scratch per saturation run and
//!   threads it through every rule's search (`*_with` / `run_delta` entry
//!   points); rows only leave the arena when they graduate into
//!   [`pattern::Subst`]s handed to appliers.
//!
//! * **Operator index.** [`egraph::EGraph`] maintains `op_key → classes`
//!   rows ([`language::Language::op_key`] is a payload-aware discriminant;
//!   `matches_op(a, b)` implies equal keys). `add` appends strictly
//!   increasing fresh ids, unions mark the loser's ops dirty, and rebuild
//!   compacts exactly the dirty rows — so on a clean graph
//!   [`egraph::EGraph::candidates_for`] is a zero-cost borrow of a sorted,
//!   canonical row, and a pattern search enumerates only classes that can
//!   match its root operator.
//!
//! * **Incremental rebuild.** [`egraph::EGraph::rebuild`] re-canonicalizes
//!   only classes dirtied since the last rebuild (union winners and the
//!   classes holding parents of losers) instead of draining the entire
//!   class map, and re-canonicalizes relation tuples only when a union
//!   actually happened.
//!
//! * **Op-keyed modification epochs + delta search.** Change tracking is
//!   per `(class, op_key)` row: every class carries one epoch per distinct
//!   operator in its node list, stamped when that operator's matches
//!   rooted at the class could have changed. Union sites stamp every row
//!   of the merged class (the root id changes for matches through either
//!   side's nodes); rebuild propagates changes to transitive parents
//!   through the *actual parent e-nodes*, stamping each ancestor only in
//!   the rows of the operators the change flows through — so a union near
//!   a widely shared leaf no longer re-surfaces every ancestor for every
//!   root operator. Per-op append-only logs (compacted deterministically,
//!   ordered by `(epoch, id)`) make "classes whose `k` rows changed since
//!   epoch `e`" an O(changes-to-`k`) query, and [`schedule::Runner`]
//!   records a per-rule epoch so a rule rooted at `Mul` re-probes only
//!   classes whose `Mul` rows changed since it last ran; saturated phases
//!   cost almost nothing. A class-level epoch (the max over rows) and a
//!   global log back variable-rooted patterns and the quiescence check,
//!   and double as the retained per-class read path
//!   ([`egraph::DeltaTracking::PerClass`], `Runner::use_per_class_deltas`)
//!   — the A/B baseline, kept the way the naive matcher is. Probed vs
//!   skipped row counts land in `RunReport::delta_probed_rows` /
//!   `delta_skipped_rows` (on the 161-leaf suite: ~12% fewer probed rows
//!   and ~1.2x faster saturation than the per-class baseline, identical
//!   outcomes asserted). Soundness and the fallbacks are documented in
//!   [`schedule`].
//!
//! * **Semi-naive relation queries.** Queries that join relation atoms or
//!   fresh-variable pattern atoms (not coverable by a single root probe)
//!   are delta-evaluated Datalog-style: [`relation::Relations`] stamps
//!   every tuple with the tick of its last change (insertion *or*
//!   canonicalization rewrite), and [`rewrite::CompiledQuery::search_delta`]
//!   runs one join round per atom with that atom restricted to — and the
//!   join re-ordered to start from — its delta. Relation deltas are read
//!   from per-relation change logs (mirroring the per-op class logs), so
//!   a round costs O(changes to that relation), not a table scan.
//!   Empty-delta rounds are skipped outright, so these rules too cost
//!   nearly nothing at quiescence, where they previously re-ran a full
//!   join every pass.
//!
//! * **Pluggable extraction strategies.** Extraction is a strategy API
//!   behind the object-safe [`extract::Extract`] trait (solve once at
//!   construction, then `cost_of`/`extract` readouts plus
//!   [`extract::ExtractionStats`] counters). The reference strategy,
//!   [`extract::WorklistExtractor`], solves costs by parent-propagation
//!   from the leaves up instead of repeated full passes to a fixpoint,
//!   then finalizes equal-cost ties by *content* (operator key + recursive
//!   child comparison, memoized) rather than by e-class id order — two
//!   graphs holding the same equivalences extract identical terms however
//!   their ids were assigned, which is what lets the selector's shared
//!   (batched) e-graph mode reproduce the per-leaf output byte for byte.
//!   [`extract::SharedTableExtractor`] keeps the same table (and therefore
//!   byte-identical terms, asserted by proptest against the worklist
//!   strategy) but routes every readout through a shared term bank, so the
//!   sub-dags hundreds of suite roots have in common are materialized once
//!   instead of once per root — the extract-stage speedup of batched mode.
//!   [`extract::DagCostExtractor`] changes the *objective*: shared
//!   subterms are charged once per readout dag (CSE semantics), finalized
//!   bottom-up in ascending tree-cost order with a strict-descent gate
//!   that keeps every chosen dag acyclic.
//!
//! ## Parallel search (snapshot-search, serial-apply)
//!
//! With [`schedule::Runner::with_search_threads`] the scheduler runs each
//! rule's *search* across a fixed [`pool::SearchPool`], while keeping
//! every *application* serial. The invariants that make parallelism
//! byte-invisible:
//!
//! * **Immutable snapshot.** A search only ever sees `&EGraph` — no rule
//!   is applied, no class touched, while any worker is searching. All
//!   read paths are genuinely `&self` (`UnionFind::find` is the
//!   non-compressing walk; no interior mutability anywhere on the read
//!   side), so `EGraph<L, N>: Sync` whenever `N::Data: Sync` and workers
//!   share the snapshot freely.
//! * **Partition, don't race.** The first atom's root enumeration is
//!   computed once, serially (delta-probe counters recorded there, once),
//!   then split into contiguous chunks; each worker runs the full
//!   multi-atom join for its chunk with a dedicated per-worker
//!   [`pattern::MatchScratch`]. Because every atom maps partial matches
//!   to output runs *in order*, chunk-order concatenation reproduces the
//!   serial match order exactly — not just the same match *set*.
//! * **Serial, deterministic apply.** The scheduler applies the
//!   concatenated matches on the one `&mut EGraph`, in that order, on its
//!   own thread. Rule order, match order, union order, and therefore
//!   every extraction tie-break downstream are identical to the serial
//!   run; `RunReport`s compare equal field-for-field (asserted in
//!   [`schedule`]'s tests).
//!
//! Semi-naive delta rounds partition the same way: each pattern-atom
//! round's delta enumeration is computed once, serially (probe counters
//! recorded there), then chunked across the pool, and the round results
//! accumulate in atom order before the deterministic sort + dedup shared
//! with the serial path — so the merged delta match set is byte-identical
//! to serial at any thread count. Only relation-atom rounds (no root
//! enumeration to partition; their deltas are log tails) and enumerations
//! below `PARALLEL_MIN_ROOTS` run inline — both through the same code
//! path, so the threshold can never change observable behavior, only
//! timing.
//!
//! Runs are also **cancellable**: a [`schedule::CancelToken`] attached to
//! the run's [`schedule::Budget`] is polled (one atomic load) at every
//! rule-search boundary — the same safe stopping points the deadline
//! uses — so an external holder aborts a run mid-saturation with the
//! graph left rebuilt and valid and `RunReport::cancelled` recording the
//! stop truthfully. The `hardboiled` compile service hangs its
//! dropped-ticket cancellation off exactly this hook.
//!
//! A caller that saturates many graphs in sequence can install one pool
//! on the runner ([`schedule::Runner::shared_pool`]) instead of paying
//! the worker spawn per run; reuse is behavior-neutral (the per-run
//! scratches are still private) and pinned by a construction-count
//! regression test ([`pool::SearchPool::constructions`]).
//!
//! ## Snapshots and warm-started saturation
//!
//! [`egraph::EGraph::snapshot`] serializes a clean (rebuilt) graph —
//! union-find, classes with node lists and analysis data, operator index
//! rows, the `(class, op_key)` epoch rows with their delta logs, and the
//! relation store with its change logs — into a versioned, checksummed,
//! dependency-free byte format ([`snapshot`]); [`egraph::EGraph::restore`]
//! rebuilds the graph from those bytes, rejecting truncated, corrupted or
//! version-bumped input with a typed [`snapshot::SnapshotError`] (never a
//! panic, so callers can fall back to a cold build). Design points:
//!
//! * **Op-key indirection.** [`language::Language::op_key`] values come
//!   from the standard hasher — stable within one binary, not across
//!   builds — so the wire format stores a table of representative
//!   e-nodes and re-derives the keys at restore time.
//! * **Derived state is rebuilt, not stored.** The hash-cons memo is
//!   reconstructed from the class node lists (exact on the clean graphs
//!   `snapshot` accepts); worklists are empty by construction.
//! * **Delta state survives.** Epoch rows, modification logs and
//!   relation change ticks round-trip exactly, so a restored *saturated*
//!   graph can warm-start: capture [`schedule::WarmStart`] cutoffs, encode
//!   the new material (hash-consing dedups everything already present),
//!   and run [`schedule::Runner::run_phased_warm`] — every rule starts
//!   "as if it had just searched the old graph" and only the semi-naive
//!   delta for the new leaves is evaluated. Warm results are
//!   byte-identical to cold ones (same closure, same content-based
//!   extraction tie-breaks) while `RunReport::delta_probed_rows` shows
//!   strictly fewer probed rows; both are asserted by the snapshot
//!   round-trip proptests and the warm-vs-cold oracles downstream.
//!
//! ## Robustness design
//!
//! Saturation is **bounded** by more than the iteration/node caps: a
//! [`schedule::Budget`] carries an absolute wall-clock deadline and an
//! applied-match cap, enforced by the scheduler between rule searches
//! through an amortized clock (one real `Instant::now` read every 16
//! searches, plus one unamortized check per outer iteration, bounding
//! deadline overshoot to a fraction of one iteration). A budget stop
//! breaks out of the rule loop *before* the pass's probe-counter drain
//! and congruence rebuild, never instead of them — so a truncated run
//! always leaves the e-graph rebuilt and valid, and extraction proceeds
//! on the best-so-far graph. `RunReport::{deadline_hit, match_budget_hit,
//! node_limit_hit}` (summarized by [`schedule::RunReport::truncated`])
//! record which budget fired; a budget stop never claims saturation.
//! Budgets are deliberately *absolute* (`Instant`, not `Duration`) so one
//! deadline can span every per-leaf run of a single compile call — the
//! `hardboiled` session layer builds its degradation ladder
//! (`Saturated` → `Truncated` → `FallbackUnoptimized`) on exactly this
//! contract.
//!
//! The cargo feature `fault-injection` compiles the deterministic
//! `fault::FaultPlan` hooks (panic in the *n*th rule search, forced
//! budget stops at the *n*th iteration) the chaos suite uses to prove the
//! ladder holds under seeded faults; the hooks cost nothing when the
//! feature is off.
//!
//! The pre-overhaul naive matcher is retained
//! ([`pattern::Pattern::search`], [`rewrite::Query::search`],
//! `Runner::use_naive_matcher`) as the reference oracle — algorithmically
//! unchanged (full class scans, string-keyed binding), with one amendment:
//! class enumeration is sorted by id so equal-cost extraction tie-breaks
//! downstream are reproducible across runs. Equivalence tests
//! in `tests/engine.rs` assert identical `(Id, Subst)` match sets and
//! saturation outcomes, and `crates/bench/src/bin/eqsat_saturation.rs`
//! measures the speedup against it.
//!
//! ## Example
//!
//! ```
//! use hb_egraph::egraph::EGraph;
//! use hb_egraph::extract::{AstSize, WorklistExtractor};
//! use hb_egraph::math_lang::{n, pdiv, pmul, pvar, Math};
//! use hb_egraph::rewrite::Rewrite;
//! use hb_egraph::schedule::Runner;
//!
//! // Fig. 1: prove (a*2)/2 == a and extract the small form.
//! let mut eg = EGraph::<Math>::new();
//! let a = eg.add(Math::Sym("a".into()));
//! let two = eg.add(Math::Num(2));
//! let m = eg.add(Math::Mul([a, two]));
//! let d = eg.add(Math::Div([m, two]));
//! let rules = vec![
//!     Rewrite::rewrite(
//!         "assoc",
//!         pdiv(pmul(pvar("a"), pvar("b")), pvar("c")),
//!         pmul(pvar("a"), pdiv(pvar("b"), pvar("c"))),
//!     ),
//!     Rewrite::rewrite("div-self", pdiv(n(2), n(2)), n(1)),
//!     Rewrite::rewrite("mul-one", pmul(pvar("a"), n(1)), pvar("a")),
//! ];
//! Runner::default().run_to_fixpoint(&mut eg, &rules);
//! let best = WorklistExtractor::new(&eg, AstSize).extract(d);
//! assert_eq!(best.to_sexp(), "a");
//! ```

pub mod egraph;
pub mod extract;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod language;
pub mod math_lang;
pub mod pattern;
pub mod pool;
pub mod relation;
pub mod rewrite;
pub mod schedule;
pub mod snapshot;
pub mod unionfind;

pub use egraph::{Analysis, DeltaTracking, EClass, EGraph};
pub use extract::{
    AstSize, CostFunction, DagCostExtractor, Extract, ExtractionStats, FnCost,
    SharedTableExtractor, WorklistExtractor,
};
#[cfg(feature = "fault-injection")]
pub use fault::{Fault, FaultPlan, InjectedStop};
pub use language::{Language, RecExpr};
pub use pattern::{CompiledPattern, MatchScratch, Pattern, Subst};
pub use pool::SearchPool;
pub use relation::Relations;
pub use rewrite::{Atom, CompiledQuery, ParallelCtx, Query, Rewrite};
pub use schedule::{Budget, CancelToken, RunReport, Runner, WarmStart};
pub use snapshot::{SnapshotAnalysis, SnapshotError, SnapshotNode, SnapshotReader, SnapshotWriter};
pub use unionfind::{Id, UnionFind};
