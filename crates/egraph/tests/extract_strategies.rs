//! The extraction strategy API's cross-strategy contracts:
//!
//! * cyclic classes (`x = f(x)`) extract through their acyclic members
//!   under **all three** strategies;
//! * equal-cost tie-breaks are deterministic: the worklist and
//!   shared-table strategies are *content*-deterministic (identical terms
//!   from differently-id'd graphs holding the same equivalences), and the
//!   dag-cost strategy is run-deterministic (same graph → same term);
//! * property test: on randomized saturated graphs, every root's
//!   shared-table readout is byte-identical to the worklist readout and
//!   the two report the same cost — the oracle that lets the selector's
//!   batched mode switch strategies without changing a single output byte.

use proptest::prelude::*;

use hb_egraph::egraph::EGraph;
use hb_egraph::extract::{
    AstSize, DagCostExtractor, Extract, FnCost, SharedTableExtractor, WorklistExtractor,
};
use hb_egraph::math_lang::{n, pdiv, pmul, pvar, Math};
use hb_egraph::rewrite::Rewrite;
use hb_egraph::schedule::Runner;
use hb_egraph::unionfind::Id;

type EG = EGraph<Math, ()>;

/// One step of a randomized e-graph workout (see `engine.rs`).
type Step = (u8, u32, u32);

fn replay(steps: &[Step]) -> (EG, Vec<Id>) {
    let mut eg = EG::new();
    let mut ids: Vec<Id> = Vec::new();
    for s in ["a", "b", "c"] {
        ids.push(eg.add(Math::Sym(s.into())));
    }
    for &(op, x, y) in steps {
        let pick = |v: u32| ids[v as usize % ids.len()];
        match op % 6 {
            0 => ids.push(eg.add(Math::Num(i64::from(x % 8)))),
            1 => ids.push(eg.add(Math::Mul([pick(x), pick(y)]))),
            2 => ids.push(eg.add(Math::Add([pick(x), pick(y)]))),
            3 => ids.push(eg.add(Math::Div([pick(x), pick(y)]))),
            4 => {
                eg.union(pick(x), pick(y));
            }
            _ => eg.rebuild(),
        }
    }
    eg.rebuild();
    (eg, ids)
}

fn math_rules() -> Vec<Rewrite<Math>> {
    vec![
        Rewrite::rewrite(
            "assoc",
            pdiv(pmul(pvar("a"), pvar("b")), pvar("c")),
            pmul(pvar("a"), pdiv(pvar("b"), pvar("c"))),
        ),
        Rewrite::rewrite("div-self", pdiv(n(2), n(2)), n(1)),
        Rewrite::rewrite("mul-one", pmul(pvar("a"), n(1)), pvar("a")),
    ]
}

/// A graph where one class is cyclic (`x = x * 1` via saturation) and
/// another is cyclic by construction.
fn cyclic_graph() -> (EG, Id, Id) {
    let mut eg = EG::new();
    let x = eg.add(Math::Sym("x".into()));
    let one = eg.add(Math::Num(1));
    let fx = eg.add(Math::Mul([x, one]));
    eg.union(x, fx);
    let y = eg.add(Math::Sym("y".into()));
    let d = eg.add(Math::Div([fx, one]));
    eg.union(d, y);
    eg.rebuild();
    (eg, x, d)
}

#[test]
fn cyclic_classes_extract_under_every_strategy() {
    let (eg, x, d) = cyclic_graph();
    let strategies: Vec<Box<dyn Extract<Math> + '_>> = vec![
        Box::new(WorklistExtractor::new(&eg, AstSize)),
        Box::new(SharedTableExtractor::new(&eg, AstSize)),
        Box::new(DagCostExtractor::new(&eg, AstSize)),
    ];
    for ex in &strategies {
        let name = ex.stats().strategy;
        assert_eq!(ex.extract(x).to_sexp(), "x", "{name}");
        assert_eq!(ex.cost_of(x), Some(1), "{name}");
        assert_eq!(ex.extract(d).to_sexp(), "y", "{name}");
    }
}

/// Two graphs holding the same equivalences with ids assigned in opposite
/// orders: an equal-cost two-member class (`a * 2` vs `a << 1` under a
/// cost function pricing both at 3).
fn tied_graphs() -> (EG, Id, EG, Id) {
    let mut g1 = EG::new();
    let a = g1.add(Math::Sym("a".into()));
    let one = g1.add(Math::Num(1));
    let two = g1.add(Math::Num(2));
    let m = g1.add(Math::Mul([a, two]));
    let s = g1.add(Math::Shl([a, one]));
    g1.union(m, s);
    g1.rebuild();

    let mut g2 = EG::new();
    let a2 = g2.add(Math::Sym("a".into()));
    let one2 = g2.add(Math::Num(1));
    let s2 = g2.add(Math::Shl([a2, one2]));
    let two2 = g2.add(Math::Num(2));
    let m2 = g2.add(Math::Mul([a2, two2]));
    g2.union(s2, m2);
    g2.rebuild();
    (g1, m, g2, m2)
}

#[test]
fn tree_strategies_break_ties_by_content_across_id_orders() {
    let (g1, r1, g2, r2) = tied_graphs();
    let w1 = WorklistExtractor::new(&g1, AstSize).extract(r1);
    let w2 = WorklistExtractor::new(&g2, AstSize).extract(r2);
    assert_eq!(
        w1.to_sexp(),
        w2.to_sexp(),
        "worklist tie-break depended on id order"
    );
    let s1 = SharedTableExtractor::new(&g1, AstSize).extract(r1);
    let s2 = SharedTableExtractor::new(&g2, AstSize).extract(r2);
    assert_eq!(s1.to_sexp(), w1.to_sexp(), "shared-table diverged (g1)");
    assert_eq!(s2.to_sexp(), w2.to_sexp(), "shared-table diverged (g2)");
}

#[test]
fn dag_strategy_is_run_deterministic_on_ties() {
    // Dag cost does not (and cannot cheaply) promise content determinism
    // across id orders, but repeated runs over the same graph must agree —
    // including on equal-dag-cost ties, which keep the tree-canonical
    // incumbent.
    let (g1, r1, _, _) = tied_graphs();
    let first = DagCostExtractor::new(&g1, AstSize).extract(r1);
    for _ in 0..3 {
        let again = DagCostExtractor::new(&g1, AstSize).extract(r1);
        assert_eq!(first.to_sexp(), again.to_sexp());
    }
    // And the tie falls where the tree strategy's content order fell.
    let tree = WorklistExtractor::new(&g1, AstSize).extract(r1);
    assert_eq!(first.to_sexp(), tree.to_sexp());
}

#[test]
fn dag_strategy_flips_winners_only_when_sharing_pays() {
    // Weight Sym high so subterm duplication matters: add = +(m, m) shares
    // a 3-node subterm, div = /(p, q) needs two distinct ones. Tree costs
    // tie at 11; dag cost prefers the shared form outright.
    let cost = || {
        FnCost(|node: &Math| match node {
            Math::Sym(_) => 3,
            _ => 1,
        })
    };
    let mut eg = EG::new();
    let a = eg.add(Math::Sym("a".into()));
    let two = eg.add(Math::Num(2));
    let m = eg.add(Math::Mul([a, two]));
    let add = eg.add(Math::Add([m, m]));
    let b = eg.add(Math::Sym("b".into()));
    let three = eg.add(Math::Num(3));
    let p = eg.add(Math::Mul([b, three]));
    let c = eg.add(Math::Sym("c".into()));
    let four = eg.add(Math::Num(4));
    let q = eg.add(Math::Mul([c, four]));
    let div = eg.add(Math::Div([p, q]));
    eg.union(add, div);
    eg.rebuild();
    let tree = WorklistExtractor::new(&eg, cost());
    assert_eq!(tree.cost_of(add), Some(11));
    let dag = DagCostExtractor::new(&eg, cost());
    assert_eq!(dag.cost_of(add), Some(6), "shared subterm charged once");
    assert_eq!(dag.extract(add).to_sexp(), "(+ (* a 2) (* a 2))");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The strategy-equivalence oracle: on randomized graphs — raw and
    // saturated — the shared-table readout of every root is byte-identical
    // to the worklist readout, at the same cost, whatever order roots are
    // read in.
    #[test]
    fn shared_table_equals_worklist_per_root(
        steps in proptest::collection::vec((0u8..6, 0u32..64, 0u32..64), 60),
        saturate in 0u8..2,
    ) {
        let (mut eg, ids) = replay(&steps);
        if saturate == 1 {
            Runner::new(16, 20_000).run_to_fixpoint(&mut eg, &math_rules());
        }
        let worklist = WorklistExtractor::new(&eg, AstSize);
        let shared = SharedTableExtractor::new(&eg, AstSize);
        for &root in &ids {
            prop_assert_eq!(worklist.cost_of(root), shared.cost_of(root));
            if worklist.cost_of(root).is_none() {
                continue;
            }
            let w = worklist.extract(root);
            let s = shared.extract(root);
            prop_assert_eq!(
                w.nodes(), s.nodes(),
                "root {}: shared-table readout diverged", root
            );
        }
        // The dag strategy must stay sound on the same roots: every
        // extracted term re-imports into the root's own class, and its dag
        // cost never exceeds the tree cost.
        let dag = DagCostExtractor::new(&eg, AstSize);
        for &root in &ids {
            prop_assert_eq!(dag.cost_of(root).is_some(), worklist.cost_of(root).is_some());
            let Some(dag_cost) = dag.cost_of(root) else { continue };
            prop_assert!(dag_cost <= worklist.cost_of(root).unwrap());
            let term = dag.extract(root);
            let mut check = eg.clone();
            let reimported = check.add_recexpr(&term);
            check.rebuild();
            prop_assert_eq!(
                check.find(reimported), check.find(root),
                "dag extraction {} left the class of {}", term.to_sexp(), root
            );
        }
    }
}
