//! Snapshot-format and warm-start invariants:
//!
//! * snapshot → restore round-trips exactly: the restored graph passes
//!   `check_op_index` / `check_op_epochs`, extracts byte-identical terms,
//!   answers delta probes identically, and re-snapshots to the very same
//!   bytes (randomized `add`/`union`/`relation`/`rebuild` workouts);
//! * corrupted, truncated and version-bumped bytes are rejected with the
//!   right typed `SnapshotError` — never a panic — and a cold build still
//!   works afterwards;
//! * a restored *saturated* graph warm-starts: new leaves added after the
//!   restore saturate to the same closure and extract byte-identically to
//!   a cold run over the combined input, with zero full searches and
//!   strictly fewer probed rows;
//! * one shared `SearchPool` serves many runs (construction-count
//!   regression) without changing reports.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use hb_egraph::egraph::EGraph;
use hb_egraph::extract::{AstSize, WorklistExtractor};
use hb_egraph::math_lang::{pmul, pvar, Math};
use hb_egraph::pool::SearchPool;
use hb_egraph::rewrite::Rewrite;
use hb_egraph::schedule::{Budget, Runner, WarmStart};
use hb_egraph::snapshot::{SnapshotError, SNAPSHOT_VERSION};
use hb_egraph::unionfind::Id;

type EG = EGraph<Math, ()>;

/// One step of a randomized workout: `(op_selector, x, y)` with operands
/// interpreted modulo the live id count (mirrors `tests/engine.rs`).
type Step = (u8, u32, u32);

fn replay(steps: &[Step]) -> (EG, Vec<Id>) {
    let mut eg = EG::new();
    let mut ids: Vec<Id> = Vec::new();
    for s in ["a", "b", "c"] {
        ids.push(eg.add(Math::Sym(s.into())));
    }
    for &(op, x, y) in steps {
        let pick = |v: u32| ids[v as usize % ids.len()];
        match op % 8 {
            0 => ids.push(eg.add(Math::Num(i64::from(x % 8)))),
            1 => ids.push(eg.add(Math::Mul([pick(x), pick(y)]))),
            2 => ids.push(eg.add(Math::Add([pick(x), pick(y)]))),
            3 => ids.push(eg.add(Math::Div([pick(x), pick(y)]))),
            4 => {
                eg.union(pick(x), pick(y));
            }
            5 => {
                eg.relations.insert("rel-a", vec![pick(x)]);
            }
            6 => {
                eg.relations.insert("rel-b", vec![pick(x), pick(y)]);
            }
            _ => eg.rebuild(),
        }
    }
    eg.rebuild();
    (eg, ids)
}

fn mul_rules() -> Vec<Rewrite<Math>> {
    vec![
        Rewrite::rewrite(
            "comm-mul",
            pmul(pvar("x"), pvar("y")),
            pmul(pvar("y"), pvar("x")),
        ),
        Rewrite::rewrite(
            "assoc-mul",
            pmul(pmul(pvar("a"), pvar("b")), pvar("c")),
            pmul(pvar("a"), pmul(pvar("b"), pvar("c"))),
        ),
    ]
}

/// A left-deep product chain over distinct symbols `s<base>..`.
fn mul_chain(eg: &mut EG, base: usize, len: usize) -> Id {
    let mut acc = eg.add(Math::Sym(format!("s{base}")));
    for i in 1..len {
        let s = eg.add(Math::Sym(format!("s{}", base + i)));
        acc = eg.add(Math::Mul([acc, s]));
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Snapshot → restore is an exact round-trip on arbitrary clean
    // graphs: invariant checkers pass, sizes and relation state match,
    // extraction is byte-identical, and re-snapshotting the restored
    // graph reproduces the original bytes (so *all* persisted state
    // survived, not just what the checkers inspect).
    #[test]
    fn snapshot_roundtrip_is_exact(
        steps in proptest::collection::vec((0u8..8, 0u32..64, 0u32..64), 80),
    ) {
        let (eg, ids) = replay(&steps);
        let bytes = eg.snapshot();
        let back = EG::restore(&bytes).expect("restore of a fresh snapshot");
        back.check_op_index();
        back.check_op_epochs();
        prop_assert_eq!(back.num_nodes(), eg.num_nodes());
        prop_assert_eq!(back.num_classes(), eg.num_classes());
        prop_assert_eq!(back.work_epoch(), eg.work_epoch());
        prop_assert_eq!(back.relations.tick(), eg.relations.tick());
        prop_assert_eq!(back.relations.version(), eg.relations.version());
        prop_assert_eq!(back.relations.total_tuples(), eg.relations.total_tuples());
        for id in &ids {
            prop_assert_eq!(back.find(*id), eg.find(*id));
        }
        // Extraction (content-based tie-breaks) must agree everywhere.
        let live = WorklistExtractor::new(&eg, AstSize);
        let restored = WorklistExtractor::new(&back, AstSize);
        for id in &ids {
            let id = eg.find(*id);
            prop_assert_eq!(
                live.extract(id).to_sexp(),
                restored.extract(id).to_sexp()
            );
        }
        prop_assert_eq!(back.snapshot(), bytes, "re-snapshot must be byte-identical");
    }

    // A saturated snapshot stays saturated and delta-quiet after
    // restore: warm-running the same rules applies nothing and probes
    // nothing beyond the quiescence checks.
    #[test]
    fn restored_saturated_graph_is_quiescent(
        len in 3usize..8,
    ) {
        let mut eg = EG::new();
        let root = mul_chain(&mut eg, 0, len);
        let runner = Runner::new(8, 1_000_000);
        let cold = runner.run_to_fixpoint(&mut eg, &mul_rules());
        prop_assert!(cold.saturated);
        let bytes = eg.snapshot();
        let mut back = EG::restore(&bytes).expect("restore");
        let warm_cutoffs = WarmStart::capture(&mut back);
        let warm = runner.run_phased_warm(
            &mut back,
            &mul_rules(),
            &[],
            8,
            Budget::none(),
            warm_cutoffs,
        );
        prop_assert!(warm.saturated);
        prop_assert_eq!(warm.applied, 0, "nothing new to apply");
        prop_assert_eq!(warm.full_searches, 0, "warm rules never search in full");
        prop_assert_eq!(back.num_nodes(), eg.num_nodes());
        let live = WorklistExtractor::new(&eg, AstSize);
        let restored = WorklistExtractor::new(&back, AstSize);
        prop_assert_eq!(
            live.extract(eg.find(root)).to_sexp(),
            restored.extract(back.find(root)).to_sexp()
        );
    }
}

/// The keystone oracle at engine level: saturate a base graph, snapshot
/// it, restore, add a new chain, warm-start — the result must be
/// byte-identical to a cold run over base + new material, with zero full
/// searches and strictly fewer probed rows.
#[test]
fn warm_start_matches_cold_and_probes_fewer_rows() {
    let runner = Runner::new(16, 1_000_000);

    // Cold reference: everything in one graph, saturated from scratch.
    let mut cold_eg = EG::new();
    let base_root_cold = mul_chain(&mut cold_eg, 0, 7);
    let new_root_cold = mul_chain(&mut cold_eg, 100, 4);
    let cold = runner.run_to_fixpoint(&mut cold_eg, &mul_rules());
    assert!(cold.saturated);

    // Warm path: saturate the base alone, snapshot, restore, add the new
    // chain, warm-start.
    let mut base_eg = EG::new();
    let base_root = mul_chain(&mut base_eg, 0, 7);
    let pre = runner.run_to_fixpoint(&mut base_eg, &mul_rules());
    assert!(pre.saturated);
    let bytes = base_eg.snapshot();
    let mut warm_eg = EG::restore(&bytes).expect("restore");
    let cutoffs = WarmStart::capture(&mut warm_eg);
    let new_root = mul_chain(&mut warm_eg, 100, 4);
    warm_eg.rebuild();
    let warm = runner.run_phased_warm(&mut warm_eg, &mul_rules(), &[], 16, Budget::none(), cutoffs);
    assert!(warm.saturated);
    assert_eq!(warm.full_searches, 0, "warm rules only ever delta-search");
    assert!(
        warm.delta_probed_rows < cold.delta_probed_rows,
        "warm probed {} rows, cold probed {} — warm must be strictly cheaper",
        warm.delta_probed_rows,
        cold.delta_probed_rows
    );

    // Byte-identity: same closure sizes, same extracted terms.
    assert_eq!(warm_eg.num_nodes(), cold_eg.num_nodes());
    assert_eq!(warm_eg.num_classes(), cold_eg.num_classes());
    warm_eg.check_op_epochs();
    let cold_x = WorklistExtractor::new(&cold_eg, AstSize);
    let warm_x = WorklistExtractor::new(&warm_eg, AstSize);
    for (cold_id, warm_id) in [(base_root_cold, base_root), (new_root_cold, new_root)] {
        assert_eq!(
            cold_x.extract(cold_eg.find(cold_id)).to_sexp(),
            warm_x.extract(warm_eg.find(warm_id)).to_sexp()
        );
    }
}

#[test]
fn corrupted_truncated_and_bumped_bytes_are_typed_errors() {
    let mut eg = EG::new();
    let _ = mul_chain(&mut eg, 0, 6);
    eg.relations.insert("rel-a", vec![Id(0)]);
    eg.rebuild();
    let bytes = eg.snapshot();

    assert!(matches!(EG::restore(&[]), Err(SnapshotError::Truncated)));

    // Bad magic.
    let mut bad = bytes.clone();
    bad[0] = b'Z';
    assert!(matches!(EG::restore(&bad), Err(SnapshotError::BadMagic)));

    // Version bump.
    let mut bumped = bytes.clone();
    bumped[4..8].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
    assert!(matches!(
        EG::restore(&bumped),
        Err(SnapshotError::UnsupportedVersion { .. })
    ));

    // Every truncation point fails cleanly.
    for cut in (0..bytes.len()).step_by(7) {
        assert!(EG::restore(&bytes[..cut]).is_err(), "cut at {cut}");
    }

    // Every flipped payload byte trips the checksum before structural
    // parsing, and header flips map to their own variants — never panics.
    for i in (24..bytes.len()).step_by(3) {
        let mut flipped = bytes.clone();
        flipped[i] ^= 0x20;
        assert!(matches!(
            EG::restore(&flipped),
            Err(SnapshotError::ChecksumMismatch)
        ));
    }

    // After any rejection, a cold build still works (the fallback path).
    let mut cold = EG::new();
    let root = mul_chain(&mut cold, 0, 6);
    let report = Runner::new(8, 1_000_000).run_to_fixpoint(&mut cold, &mul_rules());
    assert!(report.saturated);
    assert!(cold.find(root).index() < cold.num_nodes() + cold.num_classes());
}

/// Satellite regression: a shared pool is constructed once and reused by
/// every run, and sharing never changes reports or extraction.
#[test]
fn shared_search_pool_is_constructed_once() {
    let rules = mul_rules();
    let fresh_runner = Runner::new(3, 1_000_000).with_search_threads(2);
    let pool = Arc::new(SearchPool::new(2));
    let shared_runner = fresh_runner.clone().with_shared_pool(Arc::clone(&pool));

    // Shared: zero constructions across any number of runs.
    let before = SearchPool::constructions();
    let mut shared_reports = Vec::new();
    for _ in 0..3 {
        let mut eg = EG::new();
        let _ = mul_chain(&mut eg, 0, 40);
        shared_reports.push(shared_runner.run_to_fixpoint(&mut eg, &rules));
    }
    assert_eq!(
        SearchPool::constructions(),
        before,
        "shared-pool runs must not construct pools"
    );

    // Unshared: one construction per run (the behavior being replaced).
    let before = SearchPool::constructions();
    let mut fresh_reports = Vec::new();
    for _ in 0..3 {
        let mut eg = EG::new();
        let _ = mul_chain(&mut eg, 0, 40);
        fresh_reports.push(fresh_runner.run_to_fixpoint(&mut eg, &rules));
    }
    assert_eq!(
        SearchPool::constructions(),
        before + 3,
        "each unshared run constructs its own pool"
    );

    // Sharing is behavior-neutral: identical reports modulo timing.
    for (mut a, mut b) in shared_reports.into_iter().zip(fresh_reports) {
        a.elapsed = Duration::ZERO;
        b.elapsed = Duration::ZERO;
        assert_eq!(a, b);
    }

    // A thread-count mismatch falls back to a private pool (degraded,
    // never wrong).
    let mismatched = Runner::new(3, 1_000_000)
        .with_search_threads(3)
        .with_shared_pool(pool);
    let before = SearchPool::constructions();
    let mut eg = EG::new();
    let _ = mul_chain(&mut eg, 0, 40);
    let _ = mismatched.run_to_fixpoint(&mut eg, &rules);
    assert_eq!(SearchPool::constructions(), before + 1);
}
