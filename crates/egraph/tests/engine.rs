//! Engine-internal invariants:
//!
//! * the operator index stays exactly consistent with a from-scratch
//!   recomputation under randomized `add`/`union`/`rebuild` sequences;
//! * the compiled/indexed matcher returns the same `(Id, Subst)` sets as
//!   the retained naive reference matcher, on random graphs and across
//!   full saturation of the `math_lang` rule suite;
//! * saturation with the indexed + delta scheduler — under op-keyed *and*
//!   per-class change tracking — reaches the same e-graph (nodes, classes,
//!   equivalences) and extracts the same terms as the naive matcher path;
//! * op-keyed delta probes skip classes whose probed-operator rows were
//!   untouched (counter-based), and modification-log compaction is
//!   deterministic and exact.

use proptest::prelude::*;

use hb_egraph::egraph::{DeltaTracking, EGraph};
use hb_egraph::extract::{AstSize, WorklistExtractor};
use hb_egraph::language::Language;
use hb_egraph::math_lang::{n, padd, pdiv, pmul, pshl, pvar, Math};
use hb_egraph::pattern::{MatchScratch, Pattern, Subst};
use hb_egraph::rewrite::{Query, Rewrite};
use hb_egraph::schedule::Runner;
use hb_egraph::unionfind::Id;

type EG = EGraph<Math, ()>;

/// One step of a randomized e-graph workout: `(op_selector, x, y)` with the
/// payload operands interpreted modulo the live id count.
type Step = (u8, u32, u32);

/// Applies a step sequence to an existing graph, extending `ids`.
fn apply_steps(eg: &mut EG, ids: &mut Vec<Id>, steps: &[Step]) {
    for &(op, x, y) in steps {
        let pick = |v: u32| ids[v as usize % ids.len()];
        match op % 6 {
            0 => ids.push(eg.add(Math::Num(i64::from(x % 8)))),
            1 => ids.push(eg.add(Math::Mul([pick(x), pick(y)]))),
            2 => ids.push(eg.add(Math::Add([pick(x), pick(y)]))),
            3 => ids.push(eg.add(Math::Div([pick(x), pick(y)]))),
            4 => {
                eg.union(pick(x), pick(y));
            }
            _ => eg.rebuild(),
        }
    }
    eg.rebuild();
}

/// Replays a step sequence, returning the graph and the ids it created.
fn replay(steps: &[Step]) -> (EG, Vec<Id>) {
    let mut eg = EG::new();
    let mut ids: Vec<Id> = Vec::new();
    // Seed a few leaves so binary ops always have operands.
    for s in ["a", "b", "c"] {
        ids.push(eg.add(Math::Sym(s.into())));
    }
    apply_steps(&mut eg, &mut ids, steps);
    (eg, ids)
}

/// The Fig. 1 rule suite plus a strength-reduction rule, exercising
/// literal payloads and multi-level patterns. (No commutativity — paired
/// with `assoc` it would mint fresh divisions forever and never saturate.)
fn math_rules() -> Vec<Rewrite<Math>> {
    vec![
        Rewrite::rewrite(
            "assoc",
            pdiv(pmul(pvar("a"), pvar("b")), pvar("c")),
            pmul(pvar("a"), pdiv(pvar("b"), pvar("c"))),
        ),
        Rewrite::rewrite("div-self", pdiv(n(2), n(2)), n(1)),
        Rewrite::rewrite("mul-one", pmul(pvar("a"), n(1)), pvar("a")),
        Rewrite::rewrite("mul-two-shl", pmul(pvar("a"), n(2)), pshl(pvar("a"), n(1))),
    ]
}

/// Patterns from the rule suite's left-hand sides (plus a bare variable),
/// used to cross-check the two matchers directly.
fn probe_patterns() -> Vec<Pattern<Math>> {
    vec![
        pdiv(pmul(pvar("a"), pvar("b")), pvar("c")),
        pmul(pvar("a"), pvar("b")),
        pmul(pvar("a"), pvar("a")),
        pdiv(n(2), n(2)),
        pmul(pvar("a"), n(1)),
        pmul(pvar("a"), n(2)),
        pvar("e"),
    ]
}

/// Asserts two match lists are equal as sets of `(root, subst)`.
fn assert_same_matches(naive: &[(Id, Subst)], indexed: &[(Id, Subst)], ctx: &str) {
    assert_eq!(naive.len(), indexed.len(), "{ctx}: match count differs");
    for m in naive {
        assert!(indexed.contains(m), "{ctx}: indexed matcher missed {m:?}");
    }
    for m in indexed {
        assert!(naive.contains(m), "{ctx}: indexed matcher invented {m:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn op_index_consistent_under_random_workouts(
        steps in proptest::collection::vec((0u8..6, 0u32..64, 0u32..64), 80),
    ) {
        let (eg, _) = replay(&steps);
        // check_op_index panics if the maintained index differs anywhere
        // from a from-scratch recomputation over the class table;
        // check_op_epochs pins the op-keyed row invariants (row keys ==
        // node operators, class epoch == max row, rows log-covered).
        eg.check_op_index();
        eg.check_op_epochs();
    }

    #[test]
    fn indexed_matcher_equals_naive_on_random_graphs(
        steps in proptest::collection::vec((0u8..6, 0u32..64, 0u32..64), 60),
    ) {
        let (eg, _) = replay(&steps);
        for pat in probe_patterns() {
            let naive = pat.search(&eg);
            let indexed = pat.compile().search(&eg);
            assert_same_matches(&naive, &indexed, &format!("{pat:?}"));
        }
    }

    #[test]
    fn saturation_agrees_between_matchers(
        steps in proptest::collection::vec((0u8..5, 0u32..64, 0u32..64), 40),
    ) {
        // Saturate three copies of the same graph — op-keyed deltas (the
        // default), the retained per-class delta baseline, and the naive
        // matcher — and compare the resulting e-graphs and extracted
        // terms.
        let (mut fast, ids) = replay(&steps);
        let mut per_class = fast.clone();
        let mut naive = fast.clone();
        let runner = Runner::new(16, 20_000);
        let rules = math_rules();
        let r1 = runner.run_to_fixpoint(&mut fast, &rules);
        let r_pc = runner
            .clone()
            .with_per_class_deltas(true)
            .run_to_fixpoint(&mut per_class, &rules);
        let r2 = runner
            .with_naive_matcher(true)
            .run_to_fixpoint(&mut naive, &rules);
        prop_assert_eq!(r1.saturated, r2.saturated);
        prop_assert_eq!(r1.nodes, r2.nodes, "node counts diverged");
        prop_assert_eq!(r1.classes, r2.classes, "class counts diverged");
        prop_assert_eq!(r1.saturated, r_pc.saturated);
        prop_assert_eq!(r1.nodes, r_pc.nodes, "per-class node counts diverged");
        prop_assert_eq!(r1.classes, r_pc.classes, "per-class class counts diverged");
        // Op-keyed probes never visit more rows than the per-class
        // baseline on the same workload.
        prop_assert!(
            r1.delta_probed_rows <= r_pc.delta_probed_rows,
            "op-keyed probed {} rows, per-class {}",
            r1.delta_probed_rows, r_pc.delta_probed_rows
        );
        fast.check_op_epochs();
        // Same equivalences between all tracked ids.
        for &x in &ids {
            for &y in &ids {
                prop_assert_eq!(
                    fast.find(x) == fast.find(y),
                    naive.find(x) == naive.find(y),
                    "equivalence of {} and {} diverged", x, y
                );
                prop_assert_eq!(
                    fast.find(x) == fast.find(y),
                    per_class.find(x) == per_class.find(y),
                    "per-class equivalence of {} and {} diverged", x, y
                );
            }
        }
        // Same extraction costs from every root, and each fast-path
        // extraction must be a member of the naive path's equivalent class
        // (ids are numbered differently between runs, so equal-cost ties
        // can break toward different — equally minimal — representatives).
        let fast_results: Vec<_> = {
            let ex = WorklistExtractor::new(&fast, AstSize);
            ids.iter()
                .map(|&x| ex.cost_of(x).map(|c| (c, ex.extract(x))))
                .collect()
        };
        let naive_costs: Vec<_> = {
            let ex = WorklistExtractor::new(&naive, AstSize);
            ids.iter().map(|&x| ex.cost_of(x)).collect()
        };
        for ((&x, fast_result), naive_cost) in
            ids.iter().zip(&fast_results).zip(&naive_costs)
        {
            prop_assert_eq!(fast_result.as_ref().map(|(c, _)| *c), *naive_cost);
            if let Some((_, term)) = fast_result {
                let reimported = naive.add_recexpr(term);
                naive.rebuild();
                prop_assert_eq!(
                    naive.find(reimported),
                    naive.find(x),
                    "fast extraction {} is not in naive's class of {}",
                    term.to_sexp(),
                    x
                );
            }
        }
    }
}

#[test]
fn matchers_agree_after_full_math_saturation() {
    // Deterministic end-to-end: saturate Fig. 1, then cross-check every
    // probe pattern's match set on the saturated graph.
    let mut eg = EG::new();
    let a = eg.add(Math::Sym("a".into()));
    let two = eg.add(Math::Num(2));
    let m = eg.add(Math::Mul([a, two]));
    let d = eg.add(Math::Div([m, two]));
    let report = Runner::new(16, 20_000).run_to_fixpoint(&mut eg, &math_rules());
    assert!(report.saturated);
    assert_eq!(eg.find(d), eg.find(a));
    for pat in probe_patterns() {
        let naive = pat.search(&eg);
        let indexed = pat.compile().search(&eg);
        assert_same_matches(&naive, &indexed, &format!("{pat:?}"));
    }
    eg.check_op_index();
}

/// Queries exercising every non-delta-eligible shape: pattern⋈relation,
/// relation-only, fresh-variable pattern atoms, relation-extended bindings.
fn relation_queries() -> Vec<Query<Math>> {
    vec![
        Query::single("e", pmul(pvar("x"), pvar("y"))).with_relation("good", &["y"]),
        Query { atoms: vec![] }.with_relation("pair", &["x", "y"]),
        Query::single("e", padd(pvar("x"), pvar("y"))).also("q", pmul(pvar("p"), pvar("p2"))),
        Query::single("e", pmul(pvar("x"), pvar("y"))).with_relation("pair", &["y", "z"]),
    ]
}

/// Random tuple insertions into the `good` (unary) and `pair` (binary)
/// relations, operands modulo the live id count.
fn insert_tuples(eg: &mut EG, ids: &[Id], tuples: &[(u8, u32, u32)]) {
    for &(which, x, y) in tuples {
        let pick = |v: u32| ids[v as usize % ids.len()];
        if which % 2 == 0 {
            eg.relations.insert("good", vec![pick(x)]);
        } else {
            eg.relations.insert("pair", vec![pick(x), pick(y)]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Semi-naive delta evaluation must be sound (no invented matches) and
    // complete (every match that appeared after the cutoffs is reported)
    // for relation-atom queries, under randomized graph workouts and
    // tuple insertions on both sides of the cutoff.
    #[test]
    fn semi_naive_delta_covers_new_matches(
        steps1 in proptest::collection::vec((0u8..6, 0u32..64, 0u32..64), 40),
        tuples1 in proptest::collection::vec((0u8..2, 0u32..64, 0u32..64), 6),
        steps2 in proptest::collection::vec((0u8..6, 0u32..64, 0u32..64), 25),
        tuples2 in proptest::collection::vec((0u8..2, 0u32..64, 0u32..64), 6),
    ) {
        let (mut eg, mut ids) = replay(&steps1);
        insert_tuples(&mut eg, &ids, &tuples1);
        eg.rebuild();
        let queries = relation_queries();
        let compiled: Vec<_> = queries.iter().map(Query::compile).collect();
        for c in &compiled {
            prop_assert!(!c.delta_eligible(), "these queries must need semi-naive");
        }
        let before: Vec<Vec<Subst>> = compiled.iter().map(|c| c.search(&eg)).collect();
        let epoch_cutoff = eg.bump_epoch();
        let rel_cutoff = eg.relations.tick();

        apply_steps(&mut eg, &mut ids, &steps2);
        insert_tuples(&mut eg, &ids, &tuples2);
        eg.rebuild();

        let mut scratch = MatchScratch::new();
        for ((query, c), before) in queries.iter().zip(&compiled).zip(&before) {
            let full = c.search(&eg);
            let naive = query.search(&eg);
            assert_same_matches(
                &full.iter().map(|s| (Id(0), s.clone())).collect::<Vec<_>>(),
                &naive.iter().map(|s| (Id(0), s.clone())).collect::<Vec<_>>(),
                "full vs naive",
            );
            let delta = c.search_delta(&eg, epoch_cutoff, rel_cutoff, &mut scratch);
            for m in &delta {
                prop_assert!(full.contains(m), "delta invented {m:?}");
            }
            for m in &full {
                if !before.contains(m) {
                    prop_assert!(
                        delta.contains(m),
                        "semi-naive missed the new match {m:?}"
                    );
                }
            }
            // The retained per-class probe must be equally sound and
            // complete — it only probes more rows, never different
            // match semantics.
            let pc = c.search_delta_tracked(
                &eg,
                epoch_cutoff,
                rel_cutoff,
                DeltaTracking::PerClass,
                &mut scratch,
            );
            for m in &pc {
                prop_assert!(full.contains(m), "per-class delta invented {m:?}");
            }
            for m in &full {
                if !before.contains(m) {
                    prop_assert!(
                        pc.contains(m),
                        "per-class delta missed the new match {m:?}"
                    );
                }
            }
        }
        eg.check_op_epochs();
    }
}

#[test]
fn scheduler_semi_naive_finds_late_tuples_without_full_research() {
    // The main rule joins against a relation that is *empty* when the rule
    // first (full-)searches; a second rule derives the tuple afterwards.
    // The scheduler must surface the join match purely through the
    // semi-naive delta rounds — no second full search.
    let mut eg = EG::new();
    let a = eg.add(Math::Sym("a".into()));
    let two = eg.add(Math::Num(2));
    let m = eg.add(Math::Mul([a, two]));
    let main = Rewrite::<Math>::rule(
        "mark-good-products",
        Query::single("e", pmul(pvar("x"), pvar("y"))).with_relation("good", &["y"]),
        Box::new(|eg, s| {
            let e = hb_egraph::rewrite::bound(s, "e");
            eg.relations.insert("marked", vec![e])
        }),
    )
    .assume_pure();
    let derive = Rewrite::<Math>::rule(
        "two-is-good",
        Query::single("e", n(2)),
        Box::new(|eg, s| {
            let e = hb_egraph::rewrite::bound(s, "e");
            eg.relations.insert("good", vec![e])
        }),
    )
    .assume_pure();
    // Order matters: `main` searches before `good` is populated.
    let report = Runner::new(16, 20_000).run_to_fixpoint(&mut eg, &[main, derive]);
    assert!(report.saturated);
    assert!(
        eg.relations.contains("marked", &[eg.find(m)]),
        "the late-tuple join match was missed"
    );
    assert_eq!(
        report.full_searches, 2,
        "only each rule's first search may be full"
    );
    assert!(
        report.delta_searches >= 2,
        "later passes must run as delta probes"
    );
}

#[test]
fn untouched_op_rows_are_not_probed() {
    // Epoch exactness, counter-based: a class holding both a Mul and a Div
    // node sees a change under its Mul subtree only. The Div-rooted
    // query's op-keyed delta probe must visit zero rows, while the
    // per-class baseline re-probes the class (it is modified and contains
    // a Div node). Match sets are empty either way — the probe count is
    // the difference under test.
    let mut eg = EG::new();
    let two = eg.add(Math::Num(2));
    let three = eg.add(Math::Num(3));
    let mut mul_roots = Vec::new();
    for i in 0..8 {
        let a = eg.add(Math::Sym(format!("a{i}")));
        let b = eg.add(Math::Sym(format!("b{i}")));
        let m = eg.add(Math::Mul([a, two]));
        let d = eg.add(Math::Div([b, three]));
        eg.union(m, d); // every class holds a Mul node and a Div node
        mul_roots.push((a, m));
    }
    eg.rebuild();
    let q_mul = Query::single("e", pmul(pvar("x"), pvar("y"))).compile();
    let q_div = Query::single("e", pdiv(pvar("x"), pvar("y"))).compile();
    let cutoff = eg.bump_epoch();
    let rel_cutoff = eg.relations.tick();
    // One change, strictly under one class's Mul subtree.
    let c = eg.add(Math::Sym("c".into()));
    eg.union(mul_roots[0].0, c);
    eg.rebuild();

    let mut scratch = MatchScratch::new();
    let _ = q_div.search_delta(&eg, cutoff, rel_cutoff, &mut scratch);
    let (div_probed, _) = scratch.take_probe_counters();
    assert_eq!(
        div_probed, 0,
        "no Div row changed — the op-keyed Div probe must visit nothing"
    );
    let _ = q_div.search_delta_tracked(
        &eg,
        cutoff,
        rel_cutoff,
        DeltaTracking::PerClass,
        &mut scratch,
    );
    let (div_probed_pc, _) = scratch.take_probe_counters();
    assert!(
        div_probed_pc > 0,
        "the per-class baseline re-probes the modified multi-op class"
    );
    let _ = q_mul.search_delta(&eg, cutoff, rel_cutoff, &mut scratch);
    let (mul_probed, _) = scratch.take_probe_counters();
    assert!(
        mul_probed > 0,
        "the changed Mul row must be probed under op-keyed tracking"
    );
    eg.check_op_epochs();
}

#[test]
fn op_keyed_runner_probes_fewer_rows_than_per_class() {
    // Runner-level A/B: multi-op classes u_i hold a Mul node and a Div
    // node with disjoint subtrees. A rule that only changes the Div
    // side's shared leaf (`3` gains a Div node) restamps the u_i through
    // their Div parent nodes alone, so the Mul-rooted rule's delta probe
    // visits zero rows under op-keyed tracking — while the per-class
    // baseline re-probes every modified u_i (each contains a Mul node).
    // Outcomes must be identical; only probe counts may differ.
    let mut op_keyed = EG::new();
    let two = op_keyed.add(Math::Num(2));
    let three = op_keyed.add(Math::Num(3));
    for i in 0..8 {
        let a = op_keyed.add(Math::Sym(format!("a{i}")));
        let b = op_keyed.add(Math::Sym(format!("b{i}")));
        let m = op_keyed.add(Math::Mul([a, two]));
        let d = op_keyed.add(Math::Div([b, three]));
        op_keyed.union(m, d);
    }
    op_keyed.rebuild();
    let rules: Vec<Rewrite<Math>> = vec![
        // Never fires; its delta probes of the Mul rows are under test.
        // Runs first so the Div-side change below lands *after* its first
        // full search and must be covered by its delta window.
        Rewrite::rewrite("mul-one", pmul(pvar("x"), n(1)), pvar("x")),
        // Never fires; keeps a Div-rooted probe in the mix for realism.
        Rewrite::rewrite("div-threes", pdiv(n(3), n(3)), n(1)),
        // Fires once: `3` ≡ `3/1`, a change strictly on the Div side.
        Rewrite::rewrite("three-div-one", n(3), pdiv(n(3), n(1))),
    ];
    let mut per_class = op_keyed.clone();
    let runner = Runner::new(16, 20_000);
    let r_op = runner.run_to_fixpoint(&mut op_keyed, &rules);
    let r_pc = runner
        .with_per_class_deltas(true)
        .run_to_fixpoint(&mut per_class, &rules);
    assert!(r_op.saturated && r_pc.saturated);
    assert_eq!(r_op.nodes, r_pc.nodes);
    assert_eq!(r_op.classes, r_pc.classes);
    assert_eq!(r_op.applied, r_pc.applied);
    assert!(
        r_op.delta_probed_rows < r_pc.delta_probed_rows,
        "op-keyed probed {} rows, per-class {} — expected strictly fewer",
        r_op.delta_probed_rows,
        r_pc.delta_probed_rows
    );
    assert!(
        r_op.delta_skipped_rows > r_pc.delta_skipped_rows,
        "op-keyed must skip the rows per-class probes"
    );
    op_keyed.check_op_epochs();
}

#[test]
fn compaction_is_deterministic_and_exact() {
    // Regression: modification-log compaction builds its max-epoch map in
    // a HashMap; the compacted log must be fully ordered by (epoch, id)
    // so delta replay never depends on hash-iteration order. Two replicas
    // of the same workout use independently seeded HashMaps, so any
    // order leak diverges their probe results.
    let mul_key = Math::Mul([Id(0), Id(0)]).op_key();
    let build = || {
        let mut eg = EG::new();
        let two = eg.add(Math::Num(2));
        // A Mul chain deep enough that every union propagates ~40 epochs.
        let mut chain = vec![eg.add(Math::Sym("x".into()))];
        for _ in 0..40 {
            let top = *chain.last().unwrap();
            chain.push(eg.add(Math::Mul([top, two])));
        }
        eg.rebuild();
        let mut cutoffs = Vec::new();
        // Enough stamped epochs that rebuild compacts the logs repeatedly.
        for i in 0..60 {
            cutoffs.push(eg.bump_epoch());
            let s = eg.add(Math::Sym(format!("s{i}")));
            eg.union(s, chain[0]);
            eg.rebuild();
        }
        (eg, cutoffs)
    };
    let (a, cutoffs_a) = build();
    let (b, cutoffs_b) = build();
    assert_eq!(cutoffs_a, cutoffs_b, "replicas must replay identically");
    for &cutoff in &cutoffs_a {
        assert_eq!(
            a.modified_since(cutoff),
            b.modified_since(cutoff),
            "global log diverged between replicas at cutoff {cutoff}"
        );
        assert_eq!(
            a.modified_candidates_for(mul_key, cutoff),
            b.modified_candidates_for(mul_key, cutoff),
            "per-op log diverged between replicas at cutoff {cutoff}"
        );
        // Exactness after compaction: the whole chain was restamped after
        // every cutoff, so every chain class must still be reported.
        assert_eq!(
            a.modified_candidates_for(mul_key, cutoff).len(),
            40,
            "compaction lost chain entries at cutoff {cutoff}"
        );
    }
    a.check_op_epochs();
    b.check_op_epochs();
}

#[test]
fn delta_runner_skips_saturated_phases_but_finds_late_matches() {
    // After saturation, feeding a brand-new term into the graph must be
    // picked up by the (delta) runner on the next call.
    let mut eg = EG::new();
    let a = eg.add(Math::Sym("a".into()));
    let two = eg.add(Math::Num(2));
    let m = eg.add(Math::Mul([a, two]));
    let _d = eg.add(Math::Div([m, two]));
    let rules = math_rules();
    let runner = Runner::new(16, 20_000);
    let first = runner.run_to_fixpoint(&mut eg, &rules);
    assert!(first.saturated);
    // New work arrives.
    let b = eg.add(Math::Sym("b".into()));
    let mb = eg.add(Math::Mul([b, two]));
    let second = runner.run_to_fixpoint(&mut eg, &rules);
    assert!(second.saturated);
    // mul-two-shl must have fired on the new product.
    let one = eg.add(Math::Num(1));
    let shifted = eg.lookup(&Math::Shl([b, one]));
    assert_eq!(shifted, Some(eg.find(mb)), "late-arriving match was missed");
}
