//! Engine-internal invariants:
//!
//! * the operator index stays exactly consistent with a from-scratch
//!   recomputation under randomized `add`/`union`/`rebuild` sequences;
//! * the compiled/indexed matcher returns the same `(Id, Subst)` sets as
//!   the retained naive reference matcher, on random graphs and across
//!   full saturation of the `math_lang` rule suite;
//! * saturation with the indexed + delta scheduler reaches the same
//!   e-graph (nodes, classes, equivalences) and extracts the same terms
//!   as the naive matcher path.

use proptest::prelude::*;

use hb_egraph::egraph::EGraph;
use hb_egraph::extract::{AstSize, WorklistExtractor};
use hb_egraph::math_lang::{n, padd, pdiv, pmul, pshl, pvar, Math};
use hb_egraph::pattern::{MatchScratch, Pattern, Subst};
use hb_egraph::rewrite::{Query, Rewrite};
use hb_egraph::schedule::Runner;
use hb_egraph::unionfind::Id;

type EG = EGraph<Math, ()>;

/// One step of a randomized e-graph workout: `(op_selector, x, y)` with the
/// payload operands interpreted modulo the live id count.
type Step = (u8, u32, u32);

/// Applies a step sequence to an existing graph, extending `ids`.
fn apply_steps(eg: &mut EG, ids: &mut Vec<Id>, steps: &[Step]) {
    for &(op, x, y) in steps {
        let pick = |v: u32| ids[v as usize % ids.len()];
        match op % 6 {
            0 => ids.push(eg.add(Math::Num(i64::from(x % 8)))),
            1 => ids.push(eg.add(Math::Mul([pick(x), pick(y)]))),
            2 => ids.push(eg.add(Math::Add([pick(x), pick(y)]))),
            3 => ids.push(eg.add(Math::Div([pick(x), pick(y)]))),
            4 => {
                eg.union(pick(x), pick(y));
            }
            _ => eg.rebuild(),
        }
    }
    eg.rebuild();
}

/// Replays a step sequence, returning the graph and the ids it created.
fn replay(steps: &[Step]) -> (EG, Vec<Id>) {
    let mut eg = EG::new();
    let mut ids: Vec<Id> = Vec::new();
    // Seed a few leaves so binary ops always have operands.
    for s in ["a", "b", "c"] {
        ids.push(eg.add(Math::Sym(s.into())));
    }
    apply_steps(&mut eg, &mut ids, steps);
    (eg, ids)
}

/// The Fig. 1 rule suite plus a strength-reduction rule, exercising
/// literal payloads and multi-level patterns. (No commutativity — paired
/// with `assoc` it would mint fresh divisions forever and never saturate.)
fn math_rules() -> Vec<Rewrite<Math>> {
    vec![
        Rewrite::rewrite(
            "assoc",
            pdiv(pmul(pvar("a"), pvar("b")), pvar("c")),
            pmul(pvar("a"), pdiv(pvar("b"), pvar("c"))),
        ),
        Rewrite::rewrite("div-self", pdiv(n(2), n(2)), n(1)),
        Rewrite::rewrite("mul-one", pmul(pvar("a"), n(1)), pvar("a")),
        Rewrite::rewrite("mul-two-shl", pmul(pvar("a"), n(2)), pshl(pvar("a"), n(1))),
    ]
}

/// Patterns from the rule suite's left-hand sides (plus a bare variable),
/// used to cross-check the two matchers directly.
fn probe_patterns() -> Vec<Pattern<Math>> {
    vec![
        pdiv(pmul(pvar("a"), pvar("b")), pvar("c")),
        pmul(pvar("a"), pvar("b")),
        pmul(pvar("a"), pvar("a")),
        pdiv(n(2), n(2)),
        pmul(pvar("a"), n(1)),
        pmul(pvar("a"), n(2)),
        pvar("e"),
    ]
}

/// Asserts two match lists are equal as sets of `(root, subst)`.
fn assert_same_matches(naive: &[(Id, Subst)], indexed: &[(Id, Subst)], ctx: &str) {
    assert_eq!(naive.len(), indexed.len(), "{ctx}: match count differs");
    for m in naive {
        assert!(indexed.contains(m), "{ctx}: indexed matcher missed {m:?}");
    }
    for m in indexed {
        assert!(naive.contains(m), "{ctx}: indexed matcher invented {m:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn op_index_consistent_under_random_workouts(
        steps in proptest::collection::vec((0u8..6, 0u32..64, 0u32..64), 80),
    ) {
        let (eg, _) = replay(&steps);
        // check_op_index panics if the maintained index differs anywhere
        // from a from-scratch recomputation over the class table.
        eg.check_op_index();
    }

    #[test]
    fn indexed_matcher_equals_naive_on_random_graphs(
        steps in proptest::collection::vec((0u8..6, 0u32..64, 0u32..64), 60),
    ) {
        let (eg, _) = replay(&steps);
        for pat in probe_patterns() {
            let naive = pat.search(&eg);
            let indexed = pat.compile().search(&eg);
            assert_same_matches(&naive, &indexed, &format!("{pat:?}"));
        }
    }

    #[test]
    fn saturation_agrees_between_matchers(
        steps in proptest::collection::vec((0u8..5, 0u32..64, 0u32..64), 40),
    ) {
        // Saturate two copies of the same graph, one per matcher, and
        // compare the resulting e-graphs and extracted terms.
        let (mut fast, ids) = replay(&steps);
        let mut naive = fast.clone();
        let runner = Runner::new(16, 20_000);
        let rules = math_rules();
        let r1 = runner.run_to_fixpoint(&mut fast, &rules);
        let r2 = runner
            .with_naive_matcher(true)
            .run_to_fixpoint(&mut naive, &rules);
        prop_assert_eq!(r1.saturated, r2.saturated);
        prop_assert_eq!(r1.nodes, r2.nodes, "node counts diverged");
        prop_assert_eq!(r1.classes, r2.classes, "class counts diverged");
        // Same equivalences between all tracked ids.
        for &x in &ids {
            for &y in &ids {
                prop_assert_eq!(
                    fast.find(x) == fast.find(y),
                    naive.find(x) == naive.find(y),
                    "equivalence of {} and {} diverged", x, y
                );
            }
        }
        // Same extraction costs from every root, and each fast-path
        // extraction must be a member of the naive path's equivalent class
        // (ids are numbered differently between runs, so equal-cost ties
        // can break toward different — equally minimal — representatives).
        let fast_results: Vec<_> = {
            let ex = WorklistExtractor::new(&fast, AstSize);
            ids.iter()
                .map(|&x| ex.cost_of(x).map(|c| (c, ex.extract(x))))
                .collect()
        };
        let naive_costs: Vec<_> = {
            let ex = WorklistExtractor::new(&naive, AstSize);
            ids.iter().map(|&x| ex.cost_of(x)).collect()
        };
        for ((&x, fast_result), naive_cost) in
            ids.iter().zip(&fast_results).zip(&naive_costs)
        {
            prop_assert_eq!(fast_result.as_ref().map(|(c, _)| *c), *naive_cost);
            if let Some((_, term)) = fast_result {
                let reimported = naive.add_recexpr(term);
                naive.rebuild();
                prop_assert_eq!(
                    naive.find(reimported),
                    naive.find(x),
                    "fast extraction {} is not in naive's class of {}",
                    term.to_sexp(),
                    x
                );
            }
        }
    }
}

#[test]
fn matchers_agree_after_full_math_saturation() {
    // Deterministic end-to-end: saturate Fig. 1, then cross-check every
    // probe pattern's match set on the saturated graph.
    let mut eg = EG::new();
    let a = eg.add(Math::Sym("a".into()));
    let two = eg.add(Math::Num(2));
    let m = eg.add(Math::Mul([a, two]));
    let d = eg.add(Math::Div([m, two]));
    let report = Runner::new(16, 20_000).run_to_fixpoint(&mut eg, &math_rules());
    assert!(report.saturated);
    assert_eq!(eg.find(d), eg.find(a));
    for pat in probe_patterns() {
        let naive = pat.search(&eg);
        let indexed = pat.compile().search(&eg);
        assert_same_matches(&naive, &indexed, &format!("{pat:?}"));
    }
    eg.check_op_index();
}

/// Queries exercising every non-delta-eligible shape: pattern⋈relation,
/// relation-only, fresh-variable pattern atoms, relation-extended bindings.
fn relation_queries() -> Vec<Query<Math>> {
    vec![
        Query::single("e", pmul(pvar("x"), pvar("y"))).with_relation("good", &["y"]),
        Query { atoms: vec![] }.with_relation("pair", &["x", "y"]),
        Query::single("e", padd(pvar("x"), pvar("y"))).also("q", pmul(pvar("p"), pvar("p2"))),
        Query::single("e", pmul(pvar("x"), pvar("y"))).with_relation("pair", &["y", "z"]),
    ]
}

/// Random tuple insertions into the `good` (unary) and `pair` (binary)
/// relations, operands modulo the live id count.
fn insert_tuples(eg: &mut EG, ids: &[Id], tuples: &[(u8, u32, u32)]) {
    for &(which, x, y) in tuples {
        let pick = |v: u32| ids[v as usize % ids.len()];
        if which % 2 == 0 {
            eg.relations.insert("good", vec![pick(x)]);
        } else {
            eg.relations.insert("pair", vec![pick(x), pick(y)]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Semi-naive delta evaluation must be sound (no invented matches) and
    // complete (every match that appeared after the cutoffs is reported)
    // for relation-atom queries, under randomized graph workouts and
    // tuple insertions on both sides of the cutoff.
    #[test]
    fn semi_naive_delta_covers_new_matches(
        steps1 in proptest::collection::vec((0u8..6, 0u32..64, 0u32..64), 40),
        tuples1 in proptest::collection::vec((0u8..2, 0u32..64, 0u32..64), 6),
        steps2 in proptest::collection::vec((0u8..6, 0u32..64, 0u32..64), 25),
        tuples2 in proptest::collection::vec((0u8..2, 0u32..64, 0u32..64), 6),
    ) {
        let (mut eg, mut ids) = replay(&steps1);
        insert_tuples(&mut eg, &ids, &tuples1);
        eg.rebuild();
        let queries = relation_queries();
        let compiled: Vec<_> = queries.iter().map(Query::compile).collect();
        for c in &compiled {
            prop_assert!(!c.delta_eligible(), "these queries must need semi-naive");
        }
        let before: Vec<Vec<Subst>> = compiled.iter().map(|c| c.search(&eg)).collect();
        let epoch_cutoff = eg.bump_epoch();
        let rel_cutoff = eg.relations.tick();

        apply_steps(&mut eg, &mut ids, &steps2);
        insert_tuples(&mut eg, &ids, &tuples2);
        eg.rebuild();

        let mut scratch = MatchScratch::new();
        for ((query, c), before) in queries.iter().zip(&compiled).zip(&before) {
            let full = c.search(&eg);
            let naive = query.search(&eg);
            assert_same_matches(
                &full.iter().map(|s| (Id(0), s.clone())).collect::<Vec<_>>(),
                &naive.iter().map(|s| (Id(0), s.clone())).collect::<Vec<_>>(),
                "full vs naive",
            );
            let delta = c.search_delta(&eg, epoch_cutoff, rel_cutoff, &mut scratch);
            for m in &delta {
                prop_assert!(full.contains(m), "delta invented {m:?}");
            }
            for m in &full {
                if !before.contains(m) {
                    prop_assert!(
                        delta.contains(m),
                        "semi-naive missed the new match {m:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn scheduler_semi_naive_finds_late_tuples_without_full_research() {
    // The main rule joins against a relation that is *empty* when the rule
    // first (full-)searches; a second rule derives the tuple afterwards.
    // The scheduler must surface the join match purely through the
    // semi-naive delta rounds — no second full search.
    let mut eg = EG::new();
    let a = eg.add(Math::Sym("a".into()));
    let two = eg.add(Math::Num(2));
    let m = eg.add(Math::Mul([a, two]));
    let main = Rewrite::<Math>::rule(
        "mark-good-products",
        Query::single("e", pmul(pvar("x"), pvar("y"))).with_relation("good", &["y"]),
        Box::new(|eg, s| {
            let e = hb_egraph::rewrite::bound(s, "e");
            eg.relations.insert("marked", vec![e])
        }),
    )
    .assume_pure();
    let derive = Rewrite::<Math>::rule(
        "two-is-good",
        Query::single("e", n(2)),
        Box::new(|eg, s| {
            let e = hb_egraph::rewrite::bound(s, "e");
            eg.relations.insert("good", vec![e])
        }),
    )
    .assume_pure();
    // Order matters: `main` searches before `good` is populated.
    let report = Runner::new(16, 20_000).run_to_fixpoint(&mut eg, &[main, derive]);
    assert!(report.saturated);
    assert!(
        eg.relations.contains("marked", &[eg.find(m)]),
        "the late-tuple join match was missed"
    );
    assert_eq!(
        report.full_searches, 2,
        "only each rule's first search may be full"
    );
    assert!(
        report.delta_searches >= 2,
        "later passes must run as delta probes"
    );
}

#[test]
fn delta_runner_skips_saturated_phases_but_finds_late_matches() {
    // After saturation, feeding a brand-new term into the graph must be
    // picked up by the (delta) runner on the next call.
    let mut eg = EG::new();
    let a = eg.add(Math::Sym("a".into()));
    let two = eg.add(Math::Num(2));
    let m = eg.add(Math::Mul([a, two]));
    let _d = eg.add(Math::Div([m, two]));
    let rules = math_rules();
    let runner = Runner::new(16, 20_000);
    let first = runner.run_to_fixpoint(&mut eg, &rules);
    assert!(first.saturated);
    // New work arrives.
    let b = eg.add(Math::Sym("b".into()));
    let mb = eg.add(Math::Mul([b, two]));
    let second = runner.run_to_fixpoint(&mut eg, &rules);
    assert!(second.saturated);
    // mul-two-shl must have fired on the new product.
    let one = eg.add(Math::Num(1));
    let shifted = eg.lookup(&Math::Shl([b, one]));
    assert_eq!(shifted, Some(eg.find(mb)), "late-arriving match was missed");
}
