//! ML-workload sanity check (paper §IV): AMX MatMul schedule robustness.
//!
//! Reimplements the MatMul schedules from Intel's Optimization Reference
//! Manual and prints which ones HARDBOILED lowers, per operand layout —
//! the paper's Table I.
//!
//! Run with: `cargo run --example ml_kernels`

use hardboiled_repro::apps::matmul_amx::{table1, AmxMatmul, Layout, Variant};
use hardboiled_repro::hardboiled::{AmxTarget, Session};

fn mark(supported: bool) -> &'static str {
    if supported {
        "yes"
    } else {
        "no"
    }
}

fn main() {
    println!("Table I: support for MatMul schedules from Intel's manual\n");
    println!("{:<24} {:>6} {:>10}", "Implementation", "VNNI", "Standard");
    for row in table1() {
        println!(
            "{:<24} {:>6} {:>10}",
            row.variant.name(),
            mark(row.vnni),
            mark(row.standard)
        );
    }

    // One full run with numbers, for flavor — through an AMX-only session:
    // the target's rule profile drops the WMMA lowering rules entirely and
    // its cost model derives from the AMX host's device profile.
    let session = Session::builder()
        .target(AmxTarget::new())
        .build()
        .expect("valid session");
    let app = AmxMatmul::default();
    let r = app
        .run_with(&session, Layout::Standard, Variant::Reference)
        .expect("reference schedule is expressible");
    println!(
        "\nReference schedule (standard layout, target `{}`): {} tensor FMAs, lowered: {}",
        session.target().name(),
        r.counters.tensor_fmas,
        r.selection.as_ref().unwrap().all_lowered()
    );
    println!(
        "(HARDBOILED discovered the VNNI swizzle itself — no schedule changes; \
         the generated code interleaves B via kway_interleave before tile_load.)"
    );
}
