//! Quickstart: write a 1-D convolution once, build a `Session`, and
//! schedule the convolution twice — with and without Tensor Cores — then
//! compare correctness and modeled performance.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use hardboiled_repro::accel::device::DeviceProfile;
use hardboiled_repro::apps::conv1d::Conv1d;
use hardboiled_repro::apps::harness::max_rel_error;
use hardboiled_repro::hardboiled::{Batching, MetricsRegistry, ReportCache, Session};

fn main() {
    let app = Conv1d { n: 4096, k: 32 };
    println!(
        "1-D convolution, n = {}, k = {} taps (f16 in, f32 out)\n",
        app.n, app.k
    );

    // One session for the whole program: the `sim` target (AMX + WMMA),
    // the cost model derived from its device profile, and the batched mode
    // (every leaf of a program saturates in one shared e-graph). The
    // compiled rule set is built once and reused across both runs, a
    // report cache memoizes repeat compiles outright, and a metrics
    // registry aggregates outcome/cache counters and per-stage latency
    // histograms across every compile the session runs.
    let metrics = Arc::new(MetricsRegistry::default());
    let session = Session::builder()
        .target_name("sim")
        .batching(Batching::Batched)
        .report_cache(Arc::new(ReportCache::new(64)))
        .metrics(Arc::clone(&metrics))
        .build()
        .expect("valid session");
    println!(
        "session: target `{}`, {:?} batching, {:?} extraction\n",
        session.target().name(),
        session.batching(),
        session.extraction_policy()
    );

    let reference = app.reference();
    let device = DeviceProfile::rtx4070_super();

    for (label, tensor_cores) in [("CUDA-only", false), ("Tensor Cores", true)] {
        let r = app.run_with(&session, tensor_cores);
        let err = max_rel_error(&r.output, &reference);
        let t = r.time_on(&device);
        println!("== {label} schedule ==");
        if let Some(report) = &r.selection {
            println!(
                "  HARDBOILED: {} statements saturated, all lowered: {}, cache: {:?}",
                report.num_statements(),
                report.all_lowered(),
                report.cache
            );
            let s = report.stages;
            println!(
                "  stages: lower {:?}, encode {:?}, saturate {:?}, extract {:?}, splice {:?}",
                s.lower, s.encode, s.saturate, s.extract, s.splice
            );
            if let Some(ex) = &report.extraction {
                println!(
                    "  extraction: `{}` strategy, {} table entries, {} roots, \
                     bank {} nodes ({} reused), readout {:?}",
                    ex.strategy,
                    ex.table_entries,
                    ex.roots(),
                    ex.bank_nodes,
                    ex.reused_readouts,
                    ex.readout_time
                );
            }
        }
        println!("  max rel. error vs reference: {err:.2e}");
        println!(
            "  counters: {} tensor FMAs, {} CUDA flops, {} DRAM bytes, {} L1 bytes",
            r.counters.tensor_fmas,
            r.counters.cuda_flops,
            r.counters.dram_bytes(),
            r.counters.l1_bytes
        );
        println!(
            "  modeled runtime on {}: {:.2} us ({:?}-bound)\n",
            device.name,
            t.micros(),
            t.bound()
        );
    }

    // Repeats are lookups: compiling the same schedule again is served
    // from the session's report cache without re-saturating.
    let again = app.run_with(&session, true);
    if let Some(report) = &again.selection {
        println!(
            "== Tensor Cores schedule, recompiled ==\n  cache: {:?} (same report, no saturation run)\n",
            report.cache
        );
    }

    // Everything the session recorded along the way, in Prometheus text
    // exposition format (also available as JSON or a one-line summary).
    println!("== session metrics ==");
    print!("{}", metrics.snapshot().render_text());
}
