//! Quickstart: write a 1-D convolution once, schedule it twice — with and
//! without Tensor Cores — and compare correctness and modeled performance.
//!
//! Run with: `cargo run --example quickstart`

use hardboiled_repro::accel::device::DeviceProfile;
use hardboiled_repro::apps::conv1d::Conv1d;
use hardboiled_repro::apps::harness::max_rel_error;

fn main() {
    let app = Conv1d { n: 4096, k: 32 };
    println!(
        "1-D convolution, n = {}, k = {} taps (f16 in, f32 out)\n",
        app.n, app.k
    );

    let reference = app.reference();
    let device = DeviceProfile::rtx4070_super();

    for (label, tensor_cores) in [("CUDA-only", false), ("Tensor Cores", true)] {
        let r = app.run(tensor_cores);
        let err = max_rel_error(&r.output, &reference);
        let t = r.time_on(&device);
        println!("== {label} schedule ==");
        if let Some(sel) = &r.selection {
            println!(
                "  HARDBOILED: {} statements saturated, all lowered: {}",
                sel.num_statements(),
                sel.all_lowered()
            );
            println!("  EqSat time: {:?}", sel.eqsat_time);
        }
        println!("  max rel. error vs reference: {err:.2e}");
        println!(
            "  counters: {} tensor FMAs, {} CUDA flops, {} DRAM bytes, {} L1 bytes",
            r.counters.tensor_fmas,
            r.counters.cuda_flops,
            r.counters.dram_bytes(),
            r.counters.l1_bytes
        );
        println!(
            "  modeled runtime on {}: {:.2} us ({:?}-bound)\n",
            device.name,
            t.micros(),
            t.bound()
        );
    }
}
