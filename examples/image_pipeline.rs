//! Image-processing microbenchmarks (paper §V-A/§V-B): 1-D convolution at
//! image scale, sweeping kernel size like Fig. 5.
//!
//! Run with: `cargo run --release --example image_pipeline`

use hardboiled_repro::accel::device::DeviceProfile;
use hardboiled_repro::accel::perf::estimate;
use hardboiled_repro::apps::conv1d::Conv1d;

fn main() {
    let device = DeviceProfile::rtx4070_super();
    println!(
        "Conv1D on a 4096x4096 image (Fig. 5 shape), {}\n",
        device.name
    );
    println!(
        "{:>6} {:>14} {:>14} {:>9}",
        "k", "TC (ms)", "CUDA (ms)", "speedup"
    );
    for k in [8i64, 32, 56] {
        let k8 = (k + 7) / 8 * 8; // schedules need multiples of 8 taps
        let tc = estimate(&Conv1d::fig5_counters(k8, true), &device);
        let cuda = estimate(&Conv1d::fig5_counters(k8, false), &device);
        println!(
            "{:>6} {:>11.3} ({}) {:>11.3} ({}) {:>8.2}x",
            k8,
            tc.millis(),
            tc.bound(),
            cuda.millis(),
            cuda.bound(),
            cuda.total_s / tc.total_s
        );
    }
    println!("\n(run the full sweep with: cargo run -p hb-bench --bin fig5_conv1d)");
}
