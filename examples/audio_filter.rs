//! Audio recursive filtering (paper §V-D): a second-order IIR filter made
//! parallel with Hoppe-style tiling + scattered-lookahead decomposition,
//! with the SLA prefilter convolution on Tensor Cores.
//!
//! Run with: `cargo run --release --example audio_filter`

use hardboiled_repro::accel::device::DeviceProfile;
use hardboiled_repro::accel::perf::estimate;
use hardboiled_repro::apps::harness::{max_rel_error, test_data};
use hardboiled_repro::apps::recursive_filter::{sla_decompose, RecursiveFilter};
use hardboiled_repro::apps::reference::recursive_filter;

fn main() {
    let app = RecursiveFilter::default();
    let (f, ap, bp) = sla_decompose(app.a, app.b, app.d);
    println!(
        "y_t = x_t + {}·y_(t-1) + {}·y_(t-2), SLA dilation d = {}",
        app.a, app.b, app.d
    );
    println!(
        "decomposed: {}-tap prefilter, dilated recursion a' = {ap:.4}, b' = {bp:.4}\n",
        f.len()
    );

    // Correctness on a real signal.
    let x = test_data(8192, 7);
    let direct = recursive_filter(&x, app.a, app.b);
    let app_small = RecursiveFilter { tile: 1024, ..app };
    let (y_cuda, c_cuda) = app_small.run(&x, false);
    let (y_tc, c_tc) = app_small.run(&x, true);
    println!(
        "max rel error, tiled+SLA (CUDA) vs direct: {:.2e}",
        max_rel_error(&y_cuda, &direct)
    );
    println!(
        "max rel error, tiled+SLA (WMMA) vs direct: {:.2e}",
        max_rel_error(&y_tc, &direct)
    );
    println!("tensor FMAs in the WMMA prefilter: {}\n", c_tc.tensor_fmas);
    let _ = c_cuda;

    // The paper's configuration, modeled.
    let d = DeviceProfile::rtx4070_super();
    let cuda = estimate(&app.paper_counters(false), &d);
    let tc = estimate(&app.paper_counters(true), &d);
    println!("2^21 stereo samples on {}:", d.name);
    println!("  CUDA-only:    {:.1} us ({})", cuda.micros(), cuda.bound());
    println!("  Tensor Cores: {:.1} us ({})", tc.micros(), tc.bound());
    println!("  (paper: 67.5 us -> 58 us)");
}
