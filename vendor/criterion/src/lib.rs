//! A minimal, dependency-free stand-in for the `criterion` benchmarking
//! crate. The workspace builds offline (no crates.io access), so this shim
//! provides just the API surface the benches use: [`Criterion`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed for
//! `sample_size` samples of a dynamically chosen iteration count targeting
//! ~50ms per sample. The median per-iteration time is reported on stdout in
//! a `name ... time: [median]` format loosely mirroring criterion's.

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Runs closures under timing; handed to [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it `self.iters` times.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark driver; a tiny subset of criterion's.
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            target_sample_time: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Calibration run: one iteration to estimate per-iter cost.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters_per_sample =
            (self.target_sample_time.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        println!("{name:<48} time: [{}]", fmt_time(median));
        self
    }

    /// Entry point used by [`criterion_main!`]'s expansion.
    pub fn final_summary(&self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group: either `criterion_group!(name, fn...)` or the
/// long form with `config = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
