//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace builds offline (no crates.io access), so this shim
//! implements just the surface the repository's property tests use:
//! [`Strategy`] with `prop_map` / `prop_recursive`, numeric range
//! strategies, tuple strategies, [`Just`], `prop_oneof!`,
//! `proptest::collection::vec`, and the [`proptest!`] test macro with
//! `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest: generation is driven by a deterministic
//! xorshift RNG seeded from the test name (runs are reproducible), and there
//! is **no shrinking** — a failing case reports its panic directly.

use std::rc::Rc;

/// Deterministic xorshift64* RNG driving all generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from an arbitrary string (the test name).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Uniform float in `[0, 1)`.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generation strategy for values of type `Self::Value`.
pub trait Strategy: 'static {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        let this = Rc::new(self);
        BoxedStrategy(Rc::new(move |rng| this.generate(rng)))
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        let this = self;
        BoxedStrategy(Rc::new(move |rng| f(this.generate(rng))))
    }

    /// Builds a recursive strategy: `f` receives the strategy for smaller
    /// values and returns the strategy for one more level of structure.
    /// `depth` bounds the recursion; the size hints are accepted for API
    /// compatibility but unused.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        S: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            let branch = f(strat).boxed();
            let leaf = base.clone();
            // 1-in-4 chance of bottoming out early at each level.
            strat = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                if rng.below(4) == 0 {
                    leaf.generate(rng)
                } else {
                    branch.generate(rng)
                }
            }));
        }
        strat
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
    fn boxed(self) -> BoxedStrategy<T> {
        self
    }
}

/// Strategy yielding a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = ((self.end as i128) - (self.start as i128)).max(1) as u64;
                ((self.start as i128) + i128::from(rng.below(span))) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice among boxed alternatives — backs [`prop_oneof!`].
#[must_use]
pub fn one_of<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
        let i = rng.below(arms.len() as u64) as usize;
        arms[i].generate(rng)
    }))
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{BoxedStrategy, Strategy, TestRng};
    use std::rc::Rc;

    /// A strategy for `Vec`s of exactly `len` elements.
    pub fn vec<S: Strategy>(element: S, len: usize) -> BoxedStrategy<Vec<S::Value>>
    where
        S::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
            (0..len).map(|_| element.generate(rng)).collect()
        }))
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Chooses uniformly among strategies (all coerced to a common value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        $crate::one_of(vec![$($crate::Strategy::boxed($arm)),+])
    }};
}

/// Asserts inside a property body (no shrinking: delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs its body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $( #[test] fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _case in 0..cfg.cases {
                    $( let $arg = $crate::Strategy::generate(&$strat, &mut rng); )*
                    $body
                }
            }
        )*
    };
    (
        $( #[test] fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( #[test] fn $name( $($arg in $strat),* ) $body )*
        }
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        one_of, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng,
    };
}
